#include "exp/sweep_runner.hpp"

#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <map>
#include <mutex>
#include <stdexcept>
#include <thread>

#include "exp/aggregator.hpp"
#include "exp/claim_ledger.hpp"
#include "exp/sweep_report.hpp"
#include "mac/wake_pattern.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "protocols/multichannel.hpp"
#include "protocols/registry.hpp"
#include "sim/adversary.hpp"
#include "sim/results_sink.hpp"
#include "sim/run.hpp"
#include "util/csv.hpp"
#include "util/math.hpp"
#include "util/rng.hpp"
#include "util/simd.hpp"

namespace wakeup::exp {

namespace {

/// CI stream of a cell: tied to the same (base_seed, tag) identity as the
/// trial seeds but on its own tag, so adding resamples never perturbs the
/// simulation and any cell subset reproduces its CIs alone.
std::uint64_t ci_seed(std::uint64_t base_seed, std::uint64_t cell_tag) {
  return util::hash_words({base_seed, 0x4349ULL /* "CI" */, cell_tag});
}

/// Adversarial pattern-search stream (same reasoning).
std::uint64_t adversary_seed(std::uint64_t base_seed, std::uint64_t cell_tag) {
  return util::hash_words({base_seed, 0x414456ULL /* "ADV" */, cell_tag});
}

proto::ProtocolPtr build_registry_protocol(const Cell& cell, std::uint64_t seed) {
  proto::ProtocolSpec spec;
  spec.name = cell.protocol;
  spec.n = cell.n;
  spec.k = cell.k;
  spec.s = cell.s;
  spec.seed = seed;
  return proto::make_protocol_by_name(spec);
}

proto::McProtocolPtr build_mc_protocol(const Cell& cell, std::uint64_t seed) {
  if (cell.protocol == "striped_rr") {
    return proto::make_striped_round_robin(cell.n, cell.channels);
  }
  if (cell.protocol == "group_wag") {
    return proto::make_group_wait_and_go(cell.n, cell.k, cell.channels,
                                         comb::FamilyKind::kRandomized, seed);
  }
  if (cell.protocol == "random_rpd") {
    return proto::make_random_channel_rpd(cell.n, cell.channels, seed);
  }
  return proto::make_single_channel_adapter(build_registry_protocol(cell, seed),
                                            cell.channels);
}

/// Executes one cell and returns its finished record.  `trial_pool` is the
/// pool handed to sim::Run — nullptr in cell-sharded mode, where the
/// calling thread is already a pool worker and Run's
/// ThreadPool::current() detection keeps the trials inline instead of
/// deadlocking on (or oversubscribing) the pool the cells are sharded on.
CellRecord run_cell_impl(const SweepSpec& spec, const Cell& cell, const SweepOptions& options,
                         util::ThreadPool* trial_pool) {
  sim::RunSpec run;
  run.trials = cell.trials;
  run.base_seed = spec.base_seed;
  run.cell_tag = cell.tag_hash;
  run.sim = spec.sim;
  run.sim.engine = cell.engine;
  run.impairment = cell.impairment;
  // Sweep cells account energy under the listen:all model.  Energy is pure
  // side-accounting (the trial seed streams and outcomes are untouched) and
  // deliberately NOT part of the cell tag — every manifest v4 record simply
  // carries the block, so resumed and fresh reports stay byte-identical.
  run.sim.energy = sim::EnergyModel::kListenAll;

  if (cell.dynamic) {
    // Dynamic cells: arrival-generated traffic in place of a wake pattern;
    // the facade realizes one scenario per trial from the trial stream.
    run.horizon = cell.horizon;
    run.arrival = cell.arrival;
    run.dynamic_n = cell.n;
    run.dynamic_k = cell.k;
    run.make_protocol = [&cell](std::uint64_t seed) {
      return build_registry_protocol(cell, seed);
    };
    Aggregator aggregator(cell.trials, /*dynamic=*/true);
    run.per_trial_dynamic = [&aggregator](std::uint64_t i, const sim::DynamicResult& r) {
      aggregator.add(i, r);
    };
    (void)sim::Run(run, trial_pool);
    CellRecord record;
    record.cell = cell;
    record.stats =
        aggregator.finalize(options.ci_resamples, ci_seed(spec.base_seed, cell.tag_hash));
    return record;  // theory bounds are one-shot statements; no bound column
  }
  run.trial_csv = options.trial_csv;

  const bool multichannel = cell.channels > 1 || is_mc_strategy(cell.protocol);
  if (multichannel) {
    run.make_mc_protocol = [&cell](std::uint64_t seed) {
      return build_mc_protocol(cell, seed);
    };
  } else {
    run.make_protocol = [&cell](std::uint64_t seed) {
      return build_registry_protocol(cell, seed);
    };
  }

  // Wake pattern: a per-trial generator, except the adversarial kind,
  // which runs the sim/adversary hill-climbing search once per cell
  // (seeded from the cell identity) and fixes the hardest pattern found
  // for every trial.
  mac::WakePattern adversarial;
  if (cell.pattern == PatternKind::kAdversarial) {
    const auto factory = [&cell](std::uint64_t seed) {
      return build_registry_protocol(cell, seed);
    };
    const sim::PatternSearchResult search = sim::search_worst_pattern(
        factory, cell.n, cell.k, /*restarts=*/3, /*steps_per_restart=*/32,
        adversary_seed(spec.base_seed, cell.tag_hash), run.sim);
    adversarial = search.worst;
    run.pattern = &adversarial;
  } else {
    const mac::patterns::Kind kind = generator_kind(cell.pattern);
    const std::uint32_t n = cell.n;
    const std::uint32_t k = cell.k;
    const mac::Slot s = cell.s;
    run.make_pattern = [kind, n, k, s](util::Rng& rng) {
      return mac::patterns::generate(kind, n, k, s, rng);
    };
  }

  Aggregator aggregator(cell.trials);
  if (multichannel) {
    run.per_trial_mc = [&aggregator](std::uint64_t i, const sim::McSimResult& r) {
      aggregator.add(i, r);
    };
  } else {
    run.per_trial = [&aggregator](std::uint64_t i, const sim::SimResult& r) {
      aggregator.add(i, r);
    };
  }

  (void)sim::Run(run, trial_pool);

  CellRecord record;
  record.cell = cell;
  record.stats =
      aggregator.finalize(options.ci_resamples, ci_seed(spec.base_seed, cell.tag_hash));
  record.bound = cell_bound(cell);
  record.normalized_mean = record.bound > 0 && record.stats.rounds.count > 0
                               ? record.stats.rounds.mean / record.bound
                               : 0.0;
  return record;
}

/// run_cell_impl plus the per-cell observability: wall time into the
/// "sweep.cell_wall_us" histogram, a "sweep.cells_run" tick, and one
/// Perfetto duration event named by the cell tag.  All of it is sidecar
/// state — the record itself is untouched, so reports stay byte-identical
/// with obs on, off, or compiled out.
CellRecord run_cell(const SweepSpec& spec, const Cell& cell, const SweepOptions& options,
                    util::ThreadPool* trial_pool) {
  const bool observing = obs::active() || obs::trace_active();
  const std::uint64_t t0 = observing ? obs::trace_now_us() : 0;
  CellRecord record = run_cell_impl(spec, cell, options, trial_pool);
  if (observing) {
    const std::uint64_t wall = obs::trace_now_us() - t0;
    if (obs::active()) {
      static const auto c_cells = obs::Counter::get("sweep.cells_run");
      static const auto h_wall = obs::Histogram::get("sweep.cell_wall_us");
      c_cells.inc();
      h_wall.observe(wall);
    }
    if (obs::trace_active()) {
      obs::trace_duration(cell.tag, "cell", t0, wall,
                          {{"protocol", cell.protocol},
                           {"n", std::to_string(cell.n)},
                           {"k", std::to_string(cell.k)}});
    }
  }
  return record;
}

/// Once per sweep invocation: pins which SIMD kernel table ran the batch
/// engines into the registry ("simd.kernel.<name>" = 1).
void note_sweep_start() {
  if (!obs::active()) return;
  obs::Counter::get(std::string("simd.kernel.") + util::simd::active_name()).inc();
}

/// Writes the metrics/trace sidecar files a single-process run asked for.
/// Runs on every exit path (capped runs included) so smoke legs always
/// produce the files they validate.
void write_sidecars(const SweepOptions& options) {
  if (!options.metrics_path.empty()) obs::write_metrics_json(options.metrics_path);
  if (!options.trace_path.empty()) obs::write_trace_json(options.trace_path);
}

/// Emits one progress heartbeat through the sink (or the default stderr
/// line, prefixed with the worker id in worker mode).
void emit_heartbeat(const SweepOptions& options, std::uint64_t done_now, std::uint64_t resumed,
                    std::uint64_t total, std::chrono::steady_clock::time_point start) {
  SweepHeartbeat hb;
  hb.worker_id = options.worker_id;
  hb.completed = resumed + done_now;
  hb.total = total;
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
  if (elapsed > 0) hb.cells_per_sec = static_cast<double>(done_now) / elapsed;
  if (hb.cells_per_sec > 0 && hb.total > hb.completed) {
    hb.eta_sec = static_cast<double>(hb.total - hb.completed) / hb.cells_per_sec;
  }
  if (obs::active()) {
    const obs::Snapshot snap = obs::snapshot();
    hb.cache_hit_rate = obs::snapshot_ratio(snap, "cache.find_hits", "cache.find_misses");
    hb.lease_steals = obs::snapshot_value(snap, "ledger.lease_steals");
  }
  if (options.heartbeat) {
    options.heartbeat(hb);
    return;
  }
  char prefix[32] = "";
  if (hb.worker_id >= 0) std::snprintf(prefix, sizeof prefix, "[worker %d] ", hb.worker_id);
  char registry[64] = "";
  if (obs::active()) {
    std::snprintf(registry, sizeof registry, "  cache-hit %.0f%%  steals %llu",
                  100.0 * hb.cache_hit_rate, static_cast<unsigned long long>(hb.lease_steals));
  }
  std::fprintf(stderr, "%ssweep: %llu/%llu cells  %.2f cells/s  eta %.0fs%s\n", prefix,
               static_cast<unsigned long long>(hb.completed),
               static_cast<unsigned long long>(hb.total), hb.cells_per_sec, hb.eta_sec, registry);
}

/// Worker-mode run_sweep: lease contiguous chunks from the claim ledger,
/// run their cells sequentially (trials still fan onto options.pool),
/// append each result to this worker's single-writer shard, and repeat
/// until every cell is observed complete — or max_cells caps this worker,
/// which releases its unexecuted remainder for the others to take.  No
/// report is written here; `merge_sweep` owns it.
SweepOutcome run_sweep_worker(const SweepSpec& spec, const SweepOptions& options) {
  const std::vector<Cell> cells = expand(spec);
  if (cells.empty()) {
    throw std::invalid_argument("sweep: the grid expanded to zero feasible cells");
  }
  if (options.trial_csv != nullptr) {
    throw std::invalid_argument(
        "sweep: the per-trial CSV sink cannot serialize rows across worker processes — "
        "drop it when worker_id is set (or run single-process)");
  }
  if (!util::ensure_directory(options.out_dir)) {
    throw std::runtime_error("sweep: cannot create output directory " + options.out_dir);
  }
  const auto worker = static_cast<std::uint32_t>(options.worker_id);
  note_sweep_start();
  if (!options.trace_path.empty()) {
    obs::trace_set_process(options.worker_id, "worker-" + std::to_string(worker));
  }

  ManifestHeader header;
  header.base_seed = spec.base_seed;
  header.grid_hash = grid_fingerprint(cells, spec.base_seed);
  header.cells = cells.size();

  SweepOutcome outcome;
  outcome.cells_total = cells.size();
  outcome.manifest_path = options.out_dir + "/" + shard_manifest_name(worker);

  // Cells already banked anywhere count as completed: this worker's own
  // shard from a previous attempt, other workers' shards, or a legacy
  // single-process manifest.  Worker mode is inherently resume-shaped —
  // fresh fleets clear the directory up front (run_sweep_fleet).
  std::vector<std::uint8_t> completed(cells.size(), 0);
  for (const std::string& path : list_manifest_paths(options.out_dir)) {
    const ManifestData data = load_manifest(path);
    if (data.header.base_seed != header.base_seed ||
        data.header.grid_hash != header.grid_hash || data.header.cells != header.cells) {
      throw std::runtime_error(
          "sweep: " + path +
          " was written by a different spec or base seed — refusing to mix results "
          "(delete the directory or change --out)");
    }
    for (const auto& [tag, record] : data.by_tag) {
      if (record.cell.index < completed.size()) completed[record.cell.index] = 1;
    }
  }
  for (const std::uint8_t done : completed) outcome.cells_resumed += done;

  ManifestWriter writer(outcome.manifest_path, header,
                        /*append=*/std::filesystem::exists(outcome.manifest_path));
  ClaimLedgerOptions ledger_options;
  ledger_options.now_ms = options.ledger_now_ms;
  ClaimLedger ledger(options.out_dir + "/claims.jsonl", header, std::move(ledger_options));

  const std::uint64_t lease = std::max<std::uint64_t>(1, options.lease_cells);
  const auto start_time = std::chrono::steady_clock::now();
  bool capped = false;
  while (!capped) {
    const ClaimChunk chunk = ledger.claim(worker, completed, lease, options.lease_ttl_ms);
    if (chunk.empty()) {
      // Nothing claimable: either the grid is drained, or every pending
      // cell is leased by a live worker — wait for dones or lease expiry.
      if (ledger.load().complete(completed)) break;
      std::this_thread::sleep_for(std::chrono::milliseconds(25));
      continue;
    }
    for (std::uint64_t c = chunk.begin; c < chunk.end; ++c) {
      if (options.max_cells > 0 && outcome.cells_run >= options.max_cells) {
        ledger.release(worker, {c, chunk.end});  // return the unexecuted remainder now
        capped = true;
        break;
      }
      // Renew the rest of the chunk before each cell so one long cell
      // cannot expire the lease under us mid-chunk.
      ledger.extend(worker, {c, chunk.end}, options.lease_ttl_ms);
      const CellRecord record = run_cell(spec, cells[c], options, options.pool);
      writer.append(record);
      ledger.mark_done(worker, c);
      completed[c] = 1;
      ++outcome.cells_run;
      if (options.heartbeat_cells > 0 && outcome.cells_run % options.heartbeat_cells == 0) {
        emit_heartbeat(options, outcome.cells_run, outcome.cells_resumed, outcome.cells_total,
                       start_time);
      }
      if (options.progress) {
        std::printf("[worker %u] %s  mean=%.1f  failures=%llu\n", worker, cells[c].tag.c_str(),
                    record.stats.rounds.mean,
                    static_cast<unsigned long long>(record.stats.failures));
        std::fflush(stdout);
      }
    }
  }

  const ClaimLedger::State state = ledger.load();
  outcome.drained = state.complete(completed);
  std::uint64_t banked = 0;
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (completed[i] || state.done[i]) ++banked;
  }
  outcome.cells_remaining = cells.size() - banked;

  // Sidecars shard per worker process (single-writer files, like the
  // manifest shards); the fleet driver merges the trace shards.
  if (!options.metrics_path.empty()) {
    obs::write_metrics_json(options.out_dir + "/metrics-" + std::to_string(worker) + ".json");
  }
  if (!options.trace_path.empty()) {
    obs::write_trace_json(options.out_dir + "/trace-" + std::to_string(worker) + ".json");
  }
  return outcome;
}

}  // namespace

double cell_bound(const Cell& cell) {
  if (cell.protocol == "striped_rr") {
    return static_cast<double>(util::ceil_div(cell.n, cell.channels));
  }
  if (cell.protocol == "group_wag") {
    return util::scenario_ab_bound(cell.n, cell.k) / static_cast<double>(cell.channels);
  }
  if (cell.protocol == "random_rpd") {
    return util::scenario_c_bound(cell.n, cell.k) / static_cast<double>(cell.channels);
  }
  const proto::ProtocolCapabilities caps = proto::protocol_capabilities(cell.protocol);
  if (caps.needs_start_time || caps.needs_k) {
    return util::scenario_ab_bound(cell.n, cell.k);
  }
  return util::scenario_c_bound(cell.n, cell.k);
}

SweepOutcome run_sweep(const SweepSpec& spec, const SweepOptions& options) {
  if (options.worker_id >= 0) return run_sweep_worker(spec, options);
  note_sweep_start();
  const std::vector<Cell> cells = expand(spec);
  if (cells.empty()) {
    throw std::invalid_argument("sweep: the grid expanded to zero feasible cells");
  }
  if (options.trial_csv != nullptr && !spec.arrivals.empty()) {
    throw std::invalid_argument(
        "sweep: the per-trial CSV stream has no row schema for dynamic cells — drop "
        "--trials-csv from arrival-axis sweeps");
  }
  if (!util::ensure_directory(options.out_dir)) {
    throw std::runtime_error("sweep: cannot create output directory " + options.out_dir);
  }

  ManifestHeader header;
  header.base_seed = spec.base_seed;
  header.grid_hash = grid_fingerprint(cells, spec.base_seed);
  header.cells = cells.size();

  SweepOutcome outcome;
  outcome.cells_total = cells.size();
  outcome.manifest_path = options.out_dir + "/manifest.jsonl";

  // Resume pass: collect completed cells, validate the manifest identity.
  std::map<std::string, CellRecord> done;
  const bool manifest_exists = std::filesystem::exists(outcome.manifest_path);
  if (options.resume && manifest_exists) {
    ManifestData data = load_manifest(outcome.manifest_path);
    if (data.header.base_seed != header.base_seed || data.header.grid_hash != header.grid_hash) {
      throw std::runtime_error(
          "sweep: " + outcome.manifest_path +
          " was written by a different spec or base seed — refusing to mix results "
          "(delete the directory or change --out)");
    }
    done = std::move(data.by_tag);
  }
  outcome.cells_resumed = done.size();

  std::vector<const Cell*> pending;
  for (const Cell& cell : cells) {
    if (done.find(cell.tag) == done.end()) pending.push_back(&cell);
  }
  const std::uint64_t cap =
      options.max_cells > 0 ? std::min<std::uint64_t>(options.max_cells, pending.size())
                            : pending.size();
  outcome.cells_remaining = pending.size() - cap;
  pending.resize(cap);

  ManifestWriter writer(outcome.manifest_path, header,
                        /*append=*/options.resume && manifest_exists);

  util::ThreadPool* pool = options.pool != nullptr ? options.pool : &util::ThreadPool::shared();
  const bool cell_sharded =
      options.sharding == Sharding::kCells ||
      (options.sharding == Sharding::kAuto &&
       pending.size() >= std::max<std::size_t>(2, pool->worker_count()));

  std::vector<CellRecord> fresh(pending.size());
  std::mutex progress_mutex;
  std::atomic<std::uint64_t> heartbeat_done{0};
  const auto start_time = std::chrono::steady_clock::now();
  const auto run_one = [&](std::size_t i, util::ThreadPool* trial_pool) {
    fresh[i] = run_cell(spec, *pending[i], options, trial_pool);
    writer.append(fresh[i]);
    const std::uint64_t done_now = heartbeat_done.fetch_add(1) + 1;
    if (options.heartbeat_cells > 0 && done_now % options.heartbeat_cells == 0) {
      const std::lock_guard<std::mutex> lock(progress_mutex);
      emit_heartbeat(options, done_now, outcome.cells_resumed, outcome.cells_total, start_time);
    }
    if (options.progress) {
      const std::lock_guard<std::mutex> lock(progress_mutex);
      std::printf("[%zu/%zu] %s  mean=%.1f  failures=%llu\n", i + 1, pending.size(),
                  pending[i]->tag.c_str(), fresh[i].stats.rounds.mean,
                  static_cast<unsigned long long>(fresh[i].stats.failures));
      std::fflush(stdout);
    }
  };
  if (cell_sharded) {
    // Nested Runs must stay inline: with workers, ThreadPool::current()
    // inside sim::Run detects the worker thread (trial_pool == nullptr);
    // a 0-worker pool runs parallel_for on the caller — not a worker — so
    // pass the inline pool itself, or Run would silently fan trials onto
    // the multi-threaded shared pool against the "0 = inline" contract.
    util::ThreadPool* trial_pool = pool->worker_count() == 0 ? pool : nullptr;
    pool->parallel_for(0, pending.size(), [&](std::size_t i) { run_one(i, trial_pool); });
  } else {
    for (std::size_t i = 0; i < pending.size(); ++i) run_one(i, options.pool);
  }
  outcome.cells_run = pending.size();

  if (outcome.cells_remaining > 0) {
    write_sidecars(options);
    return outcome;  // capped: no report yet
  }

  // Assemble the report in grid order from resumed + fresh records.
  std::map<std::string, const CellRecord*> fresh_by_tag;
  for (const CellRecord& record : fresh) fresh_by_tag[record.cell.tag] = &record;
  outcome.records.reserve(cells.size());
  for (const Cell& cell : cells) {
    const auto it = fresh_by_tag.find(cell.tag);
    CellRecord record = it != fresh_by_tag.end() ? *it->second : done.at(cell.tag);
    // Identity comes from the grid, not the manifest text: index and tag
    // are already equal by construction, but normalize anyway so a report
    // row never disagrees with its grid cell.
    record.cell = cell;
    outcome.records.push_back(std::move(record));
  }

  apply_inflation_join(outcome.records);
  outcome.csv_path = options.out_dir + "/report.csv";
  outcome.json_path = options.out_dir + "/report.json";
  write_csv_report(outcome.csv_path, outcome.records);
  write_json_report(outcome.json_path, header, outcome.records);
  outcome.completed = true;
  write_sidecars(options);
  return outcome;
}

SweepOutcome merge_sweep(const std::string& out_dir) {
  const std::vector<std::string> paths = list_manifest_paths(out_dir);
  if (paths.empty()) {
    throw std::runtime_error("merge: no manifest shards in " + out_dir);
  }

  ManifestHeader header;
  bool have_header = false;
  std::map<std::uint64_t, CellRecord> by_index;
  std::map<std::uint64_t, std::string> line_by_index;
  for (const std::string& path : paths) {
    ManifestData data = load_manifest(path);
    if (!have_header) {
      header = data.header;
      have_header = true;
    } else if (data.header.version != header.version ||
               data.header.base_seed != header.base_seed ||
               data.header.grid_hash != header.grid_hash ||
               data.header.cells != header.cells) {
      throw std::runtime_error(
          "merge: " + path + " and " + paths.front() +
          " were written by different specs or base seeds — refusing to mix results");
    }
    for (auto& [tag, record] : data.by_tag) {
      const std::uint64_t index = record.cell.index;
      if (index >= header.cells) {
        throw std::runtime_error("merge: " + path + " carries cell index " +
                                 std::to_string(index) + " outside the " +
                                 std::to_string(header.cells) + "-cell grid");
      }
      std::string line = manifest_line(record);
      const auto it = line_by_index.find(index);
      if (it != line_by_index.end()) {
        // Duplicates happen when a lease was stolen and the cell ran twice;
        // the seed contract makes those byte-identical.  Anything else is
        // foreign data and poisons the report.
        if (it->second != line) {
          throw std::runtime_error(
              "merge: shards disagree on cell '" + tag +
              "' — same identity, different results; refusing to merge (" + path + ")");
        }
        continue;
      }
      line_by_index.emplace(index, std::move(line));
      by_index.emplace(index, std::move(record));
    }
  }

  SweepOutcome outcome;
  outcome.cells_total = header.cells;
  outcome.cells_resumed = by_index.size();
  outcome.cells_remaining = header.cells - by_index.size();
  outcome.manifest_path = paths.front();
  if (outcome.cells_remaining > 0) return outcome;  // incomplete: no report

  // by_index is ordered, so this is exactly grid order — the same records,
  // join and writers as an uninterrupted single-process run.
  outcome.records.reserve(by_index.size());
  for (auto& [index, record] : by_index) outcome.records.push_back(std::move(record));
  apply_inflation_join(outcome.records);
  outcome.csv_path = out_dir + "/report.csv";
  outcome.json_path = out_dir + "/report.json";
  write_csv_report(outcome.csv_path, outcome.records);
  write_json_report(outcome.json_path, header, outcome.records);
  outcome.completed = true;
  outcome.drained = true;
  return outcome;
}

SweepOutcome run_sweep_fleet(const SweepSpec& spec, const SweepOptions& options,
                             std::uint32_t workers, std::size_t worker_threads) {
  if (workers == 0) throw std::invalid_argument("sweep: --workers must be >= 1");
  if (options.worker_id >= 0) {
    throw std::invalid_argument(
        "sweep: the fleet driver assigns worker ids — worker_id cannot be preset");
  }
  if (options.trial_csv != nullptr) {
    throw std::invalid_argument(
        "sweep: the per-trial CSV sink cannot serialize rows across worker processes");
  }
  (void)expand(spec);  // surface spec errors here, not in every child
  if (!util::ensure_directory(options.out_dir)) {
    throw std::runtime_error("sweep: cannot create output directory " + options.out_dir);
  }
  if (!options.resume) {
    // Fresh run: stale coordination state (an old grid's ledger, orphaned
    // shards, reports, sidecar shards) must not leak into the merge.
    std::filesystem::remove(options.out_dir + "/claims.jsonl");
    std::filesystem::remove(options.out_dir + "/report.csv");
    std::filesystem::remove(options.out_dir + "/report.json");
    for (const std::string& path : list_manifest_paths(options.out_dir)) {
      std::filesystem::remove(path);
    }
    for (const auto& entry : std::filesystem::directory_iterator(options.out_dir)) {
      const std::string name = entry.path().filename().string();
      if ((name.rfind("trace-", 0) == 0 || name.rfind("metrics-", 0) == 0) &&
          name.size() > 5 && name.compare(name.size() - 5, 5, ".json") == 0) {
        std::filesystem::remove(entry.path());
      }
    }
  }

  // fork() carries only the calling thread into the child, so the driver
  // must run before this process spawns any (ThreadPool::shared() included);
  // each child builds its own pool after the fork.
  std::fflush(stdout);
  std::fflush(stderr);
  std::vector<pid_t> pids;
  pids.reserve(workers);
  for (std::uint32_t w = 0; w < workers; ++w) {
    const pid_t pid = ::fork();
    if (pid < 0) {
      const int err = errno;
      for (const pid_t child : pids) ::kill(child, SIGTERM);
      for (const pid_t child : pids) ::waitpid(child, nullptr, 0);
      throw std::runtime_error(std::string("sweep: fork failed: ") + std::strerror(err));
    }
    if (pid == 0) {
      try {
        util::ThreadPool pool(worker_threads);
        SweepOptions worker_options = options;
        worker_options.pool = &pool;
        worker_options.worker_id = static_cast<std::int32_t>(w);
        (void)run_sweep(spec, worker_options);
        std::fflush(stdout);
        std::fflush(stderr);
        ::_exit(0);
      } catch (const std::exception& e) {
        std::fprintf(stderr, "[worker %u] fatal: %s\n", w, e.what());
        std::fflush(stderr);
        ::_exit(1);
      }
    }
    pids.push_back(pid);
  }
  bool failed = false;
  for (const pid_t pid : pids) {
    int status = 0;
    if (::waitpid(pid, &status, 0) < 0 || !WIFEXITED(status) || WEXITSTATUS(status) != 0) {
      failed = true;
    }
  }
  if (failed) {
    throw std::runtime_error(
        "sweep: a worker process failed — see its stderr above; the manifest shards keep "
        "every completed cell, so re-running with --resume continues where it stopped");
  }
  SweepOutcome outcome = merge_sweep(options.out_dir);
  if (!options.trace_path.empty()) {
    // The workers each wrote a process-row shard; stitch them textually
    // into one Perfetto-loadable file (missing shards — e.g. a worker that
    // claimed nothing — are skipped by the merger).
    std::vector<std::string> shards;
    shards.reserve(workers);
    for (std::uint32_t w = 0; w < workers; ++w) {
      shards.push_back(options.out_dir + "/trace-" + std::to_string(w) + ".json");
    }
    obs::merge_trace_shards(shards, options.trace_path);
  }
  if (!options.metrics_path.empty()) {
    // Per-worker registries live in <out_dir>/metrics-<W>.json; this
    // top-level file carries the driver-side (merge) registry.
    obs::write_metrics_json(options.metrics_path);
  }
  return outcome;
}

}  // namespace wakeup::exp
