#pragma once

/// \file transmission_matrix.hpp
/// The Scenario C transmission matrix (paper §5.1–5.3).
///
/// A (log n × ℓ) matrix M of transmission sets with ℓ = 2c·n·log n·log log n.
/// Row i is scanned for m_i = c·2^i·log n·log log n slots; a station woken at
/// σ becomes operative at µ(σ) (the next multiple of log log n) and walks the
/// rows top to bottom; columns correspond to global time mod ℓ.  The random
/// construction (§5.3) puts u ∈ M_{i,j} independently with probability
/// 2^{-(i + ρ(j))}, ρ(j) = j mod log log n.
///
/// The paper proves such a matrix is a *waking matrix* (isolates a station
/// by the first well-balanced round) with positive probability and
/// derandomizes existentially.  This implementation instantiates the random
/// object from a seed and evaluates membership lazily — a pure function of
/// (seed, row, column, station) — so the full ℓ-column matrix never needs to
/// be materialized.  A dense materialization is provided for small-n
/// verification.

#include <cstdint>
#include <optional>
#include <vector>

#include "combinatorics/transmission_set.hpp"
#include "util/math.hpp"
#include "util/rng.hpp"

namespace wakeup::comb {

/// All derived quantities of the §5 construction for a given (n, c).
struct MatrixParams {
  std::uint32_t n = 0;
  unsigned c = 2;        ///< the "sufficiently large constant" of §5.1
  unsigned rows = 1;     ///< log n (clamped >= 1)
  unsigned window = 1;   ///< log log n (clamped >= 1) — W in Definition 5.1
  std::uint64_t ell = 0; ///< matrix length ℓ = 2c·n·rows·window

  [[nodiscard]] static MatrixParams make(std::uint32_t n, unsigned c);

  /// m_i = c·2^i·log n·log log n — slots a station spends on row i (1-based).
  [[nodiscard]] std::uint64_t m(unsigned i) const noexcept {
    return static_cast<std::uint64_t>(c) * util::ipow(2, i) * rows * window;
  }

  /// Σ_{i=1..rows} m_i — one full top-to-bottom scan.
  [[nodiscard]] std::uint64_t total_scan() const noexcept;

  /// ρ(j) = j mod window.
  [[nodiscard]] unsigned rho(std::uint64_t col) const noexcept {
    return static_cast<unsigned>(col % window);
  }

  /// µ(σ) = min { l >= σ : l ≡ 0 mod window } — operative slot of a station
  /// woken at σ.
  [[nodiscard]] std::int64_t mu(std::int64_t sigma) const noexcept {
    const auto w = static_cast<std::int64_t>(window);
    const std::int64_t r = sigma % w;
    return r == 0 ? sigma : sigma + (w - r);
  }

  /// The row (1-based) whose sets a station woken at `sigma` obeys at slot
  /// `t`, or nullopt while it is still waiting (t < µ(σ)).  After one full
  /// scan the protocol wraps and restarts from row 1 (the paper's guarantee
  /// fires well before that; wrapping keeps the runtime total).
  [[nodiscard]] std::optional<unsigned> row_at(std::int64_t sigma, std::int64_t t) const noexcept;
};

/// Membership oracle for the seeded random matrix.  Stateless and cheap:
/// one 64-bit hash per query.
class LazyTransmissionMatrix {
 public:
  LazyTransmissionMatrix(MatrixParams params, std::uint64_t seed) noexcept
      : params_(params), seed_(seed) {}

  [[nodiscard]] const MatrixParams& params() const noexcept { return params_; }
  [[nodiscard]] std::uint64_t seed() const noexcept { return seed_; }

  /// Is u ∈ M_{row, col mod ℓ}?  row is 1-based (1..rows).
  [[nodiscard]] bool contains(unsigned row, std::uint64_t col, Station u) const noexcept {
    const std::uint64_t j = col % params_.ell;
    const unsigned e = row + params_.rho(j);
    if (e >= 64) return false;  // probability below 2^-63 — never fires
    const std::uint64_t h =
        util::hash_words({seed_, 0x4d4154524958ULL /* "MATRIX" */, row, j, u});
    return (h >> (64 - e)) == 0;
  }

  /// Membership probability of row/column (for tests of the construction).
  [[nodiscard]] double probability(unsigned row, std::uint64_t col) const noexcept {
    const unsigned e = row + params_.rho(col % params_.ell);
    return e >= 64 ? 0.0 : 1.0 / static_cast<double>(std::uint64_t{1} << e);
  }

 private:
  MatrixParams params_;
  std::uint64_t seed_;
};

/// Fully materialized matrix for small n: rows × ℓ transmission sets.
/// Memory is O(rows · ℓ · n / 8) — use only in tests and structure benches.
class DenseTransmissionMatrix {
 public:
  [[nodiscard]] static DenseTransmissionMatrix materialize(const LazyTransmissionMatrix& lazy);

  [[nodiscard]] const MatrixParams& params() const noexcept { return params_; }
  [[nodiscard]] bool contains(unsigned row, std::uint64_t col, Station u) const noexcept {
    return cell(row, col).contains(u);
  }
  /// row is 1-based, col taken mod ℓ.
  [[nodiscard]] const TransmissionSet& cell(unsigned row, std::uint64_t col) const noexcept {
    return cells_[(row - 1) * params_.ell + (col % params_.ell)];
  }

 private:
  MatrixParams params_;
  std::vector<TransmissionSet> cells_;
};

}  // namespace wakeup::comb
