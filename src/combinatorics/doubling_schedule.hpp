#pragma once

/// \file doubling_schedule.hpp
/// The ordered concatenation <F_1, F_2, ..., F_J> of (n, 2^i)-selective
/// families used by both Scenario A (`select_among_the_first`, §3) and
/// Scenario B (`wait_and_go`, §4).
///
/// §4 notation: z_i = |F_i|, z = z_1 + ... + z_J; the global schedule is
/// indexed modulo z ("scanned circularly").  `wait_and_go` additionally
/// needs the *family start offsets*, because a newly awake station must stay
/// silent until the next start so the participant set of a family is frozen
/// during its execution.
///
/// The backend is *implicit*: families are held as `ImplicitFamily` handles
/// whose membership is computed per query (O(levels) construction state, no
/// materialized bitsets), which is what makes k_max-free ladders at
/// n = 2^20 affordable.  `family(i)` materializes lazily — cold path for
/// tests and reports only.

#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "combinatorics/builders.hpp"
#include "combinatorics/implicit_family.hpp"

namespace wakeup::comb {

class DoublingSchedule {
 public:
  struct Config {
    std::uint32_t n = 0;
    /// Largest contention size covered; families are built for
    /// k = 2^1 .. 2^ceil(log2(k_max)), at least one family.
    std::uint32_t k_max = 2;
    FamilyKind kind = FamilyKind::kRandomized;
    std::uint64_t seed = 1;
    double c = kDefaultRandomFamilyC;
    /// Truncates the concatenation (0 = off): stop appending doubling
    /// levels once the cumulative length has reached this many slots.  At
    /// least one family is always kept, and the family that crosses the
    /// cap is kept whole, so the period is >= prefix_cap (or the full
    /// ladder, whichever is shorter).  Used by protocols whose analysis
    /// guarantees success within a known slot prefix — e.g. wakeup_with_s,
    /// whose round-robin half succeeds within 2n slots, so SATF sets past
    /// index n can never run before success.
    std::uint64_t prefix_cap = 0;
  };

  explicit DoublingSchedule(const Config& config);

  [[nodiscard]] const Config& config() const noexcept { return config_; }

  /// z — the length of one full pass over all families.
  [[nodiscard]] std::uint64_t period() const noexcept { return period_; }

  [[nodiscard]] std::size_t family_count() const noexcept { return implicit_.size(); }

  /// Family i behind the implicit interface — the hot-path handle.
  [[nodiscard]] const ImplicitFamily& implicit_family(std::size_t i) const noexcept {
    return *implicit_[i];
  }

  /// Family i, materialized lazily on first access (cached; thread-safe).
  /// Cold path: tests, verification and reports — the simulation never
  /// needs the bitsets.
  [[nodiscard]] const SelectiveFamily& family(std::size_t i) const;

  /// Offset of family i's first set within the period.
  [[nodiscard]] std::uint64_t family_start(std::size_t i) const noexcept { return starts_[i]; }

  /// Does station u transmit at schedule index `idx` (taken mod period)?
  [[nodiscard]] bool transmits(Station u, std::uint64_t idx) const noexcept;

  /// Packs 64 consecutive schedule bits of station u starting at index
  /// `from` into one word: bit j = transmits(u, from + j).  Assembles the
  /// word from per-family `membership_word` chunks instead of re-running
  /// position()'s binary search per step — the word-parallel building
  /// block of the oblivious schedule_block implementations.
  [[nodiscard]] std::uint64_t schedule_word(Station u, std::uint64_t from) const noexcept;

  /// Is `idx mod period` the first set of some family?
  [[nodiscard]] bool is_family_start(std::uint64_t idx) const noexcept;

  /// Smallest sigma >= t such that sigma is a family start — the slot at
  /// which a station woken at t may begin transmitting (wait_and_go rule).
  [[nodiscard]] std::uint64_t next_family_start(std::uint64_t t) const noexcept;

  /// Locates the family and in-family step for a schedule index.
  struct Position {
    std::size_t family_index;
    std::uint64_t step;
  };
  [[nodiscard]] Position position(std::uint64_t idx) const noexcept;

 private:
  Config config_;
  std::vector<ImplicitFamilyPtr> implicit_;
  std::vector<std::uint64_t> starts_;  ///< starts_[i] = z_1 + ... + z_{i-1}
  std::uint64_t period_ = 0;
  /// Lazily materialized mirrors of implicit_ (family(i) cache).
  mutable std::vector<std::shared_ptr<const SelectiveFamily>> materialized_;
  mutable std::mutex materialize_mutex_;
};

/// Schedules are immutable and shared by every station runtime of a
/// protocol instance.
using DoublingSchedulePtr = std::shared_ptr<const DoublingSchedule>;

[[nodiscard]] DoublingSchedulePtr make_doubling_schedule(const DoublingSchedule::Config& config);

}  // namespace wakeup::comb
