#include <algorithm>

#include "combinatorics/builders.hpp"
#include "combinatorics/verifier.hpp"
#include "util/math.hpp"
#include "util/rng.hpp"

namespace wakeup::comb {
namespace {

/// One target subset the family must isolate.
struct Target {
  util::DynamicBitset bits;
  bool covered = false;
};

/// How many still-uncovered targets would `candidate` isolate?
std::size_t coverage(const util::DynamicBitset& candidate, const std::vector<Target>& targets) {
  std::size_t c = 0;
  for (const Target& t : targets) {
    if (!t.covered && candidate.intersection_count(t.bits) == 1) ++c;
  }
  return c;
}

}  // namespace

SelectiveFamily build_greedy(std::uint32_t n, std::uint32_t k, std::uint64_t seed) {
  if (k < 1) k = 1;
  if (k > n) k = n;
  const FamilyParams params{n, k};

  // Enumerate every target subset (exponential in n — small-n use only).
  std::vector<Target> targets;
  for (std::uint32_t size = params.lo(); size <= params.hi(); ++size) {
    for_each_subset(n, size, [&](const std::vector<Station>& subset) {
      util::DynamicBitset b(n);
      for (Station u : subset) b.set(u);
      targets.push_back(Target{std::move(b), false});
      return true;
    });
  }

  // Candidate pool: random sets at the density matched to each size class,
  // plus every singleton (a singleton {x} isolates every target containing
  // x, so greedy always has a progress move and terminates).
  std::vector<util::DynamicBitset> pool;
  util::Rng rng(util::hash_words({seed, 0x475245454459ULL /* "GREEDY" */}));
  for (std::uint32_t size = params.lo(); size <= params.hi(); ++size) {
    const double p = 1.0 / static_cast<double>(size);
    const std::size_t count = 16 * static_cast<std::size_t>(util::log2n_clamped(n));
    for (std::size_t i = 0; i < count; ++i) {
      util::DynamicBitset b(n);
      for (std::uint32_t u = 0; u < n; ++u) {
        if (rng.bernoulli(p)) b.set(u);
      }
      if (b.any()) pool.push_back(std::move(b));
    }
  }
  for (std::uint32_t u = 0; u < n; ++u) {
    util::DynamicBitset b(n);
    b.set(u);
    pool.push_back(std::move(b));
  }

  std::vector<TransmissionSet> chosen;
  std::size_t uncovered = targets.size();
  while (uncovered > 0) {
    std::size_t best_idx = 0;
    std::size_t best_cov = 0;
    for (std::size_t i = 0; i < pool.size(); ++i) {
      const std::size_t c = coverage(pool[i], targets);
      if (c > best_cov) {
        best_cov = c;
        best_idx = i;
      }
    }
    if (best_cov == 0) {
      // Cannot happen while singletons remain in the pool and some target is
      // uncovered, but guard against pathological inputs anyway.
      break;
    }
    const util::DynamicBitset& pick = pool[best_idx];
    for (Target& t : targets) {
      if (!t.covered && pick.intersection_count(t.bits) == 1) {
        t.covered = true;
        --uncovered;
      }
    }
    chosen.emplace_back(pick);
  }
  return SelectiveFamily(params, std::move(chosen), "greedy");
}

}  // namespace wakeup::comb
