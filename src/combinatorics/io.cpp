#include "combinatorics/io.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>

namespace wakeup::comb {
namespace {

[[noreturn]] void fail(std::size_t line, const std::string& message) {
  throw std::runtime_error("read_family: line " + std::to_string(line) + ": " + message);
}

/// Next non-empty, non-comment line; false at EOF.
bool next_line(std::istream& is, std::string& out, std::size_t& line_no) {
  while (std::getline(is, out)) {
    ++line_no;
    const auto first = out.find_first_not_of(" \t\r");
    if (first == std::string::npos) continue;
    if (out[first] == '#') continue;
    return true;
  }
  return false;
}

}  // namespace

void write_family(std::ostream& os, const SelectiveFamily& family) {
  os << "selective-family v1\n";
  os << "n " << family.params().n << " k " << family.params().k << " origin "
     << (family.origin().empty() ? "unknown" : family.origin()) << "\n";
  for (std::size_t j = 0; j < family.length(); ++j) {
    const auto& members = family.set(j).members();
    os << "set " << members.size();
    for (Station u : members) os << ' ' << u;
    os << "\n";
  }
  os << "end\n";
}

SelectiveFamily read_family(std::istream& is) {
  std::string line;
  std::size_t line_no = 0;

  if (!next_line(is, line, line_no) || line.find("selective-family v1") == std::string::npos) {
    fail(line_no, "expected header 'selective-family v1'");
  }

  if (!next_line(is, line, line_no)) fail(line_no, "missing parameter line");
  std::istringstream params_in(line);
  std::string tok_n, tok_k, tok_origin, origin;
  std::uint32_t n = 0, k = 0;
  params_in >> tok_n >> n >> tok_k >> k >> tok_origin >> origin;
  if (tok_n != "n" || tok_k != "k" || tok_origin != "origin" || n == 0) {
    fail(line_no, "malformed parameter line (want: n <n> k <k> origin <word>)");
  }

  std::vector<TransmissionSet> sets;
  for (;;) {
    if (!next_line(is, line, line_no)) fail(line_no, "missing 'end'");
    std::istringstream set_in(line);
    std::string keyword;
    set_in >> keyword;
    if (keyword == "end") break;
    if (keyword != "set") fail(line_no, "expected 'set' or 'end', got '" + keyword + "'");
    std::size_t count = 0;
    if (!(set_in >> count)) fail(line_no, "missing member count");
    std::vector<Station> members;
    members.reserve(count);
    for (std::size_t i = 0; i < count; ++i) {
      std::uint64_t id = 0;
      if (!(set_in >> id)) fail(line_no, "fewer members than declared");
      if (id >= n) fail(line_no, "station id " + std::to_string(id) + " out of range");
      members.push_back(static_cast<Station>(id));
    }
    std::uint64_t extra;
    if (set_in >> extra) fail(line_no, "more members than declared");
    sets.emplace_back(n, members);
  }
  return SelectiveFamily(FamilyParams{n, k}, std::move(sets), origin);
}

void save_family(const std::string& path, const SelectiveFamily& family) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("save_family: cannot open " + path);
  write_family(out, family);
  if (!out) throw std::runtime_error("save_family: write failed for " + path);
}

SelectiveFamily load_family(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("load_family: cannot open " + path);
  return read_family(in);
}

}  // namespace wakeup::comb
