#include "combinatorics/builders.hpp"

namespace wakeup::comb {

std::string_view family_kind_name(FamilyKind kind) noexcept {
  switch (kind) {
    case FamilyKind::kRandomized:
      return "randomized";
    case FamilyKind::kBitSplitter:
      return "bit_splitter";
    case FamilyKind::kModPrime:
      return "mod_prime";
    case FamilyKind::kKautzSingleton:
      return "kautz_singleton";
    case FamilyKind::kGreedy:
      return "greedy";
  }
  return "unknown";
}

SelectiveFamily build_family(FamilyKind kind, std::uint32_t n, std::uint32_t k,
                             std::uint64_t seed, double c) {
  switch (kind) {
    case FamilyKind::kBitSplitter:
      if (k <= 2) return build_bit_splitter(n);
      return build_randomized(n, k, c, seed);  // splitter cannot handle k > 2
    case FamilyKind::kModPrime:
      return build_mod_prime(n, k);
    case FamilyKind::kKautzSingleton:
      return build_kautz_singleton(n, k);
    case FamilyKind::kGreedy:
      return build_greedy(n, k, seed);
    case FamilyKind::kRandomized:
      break;
  }
  return build_randomized(n, k, c, seed);
}

}  // namespace wakeup::comb
