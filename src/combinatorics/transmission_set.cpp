#include "combinatorics/transmission_set.hpp"

#include <algorithm>

namespace wakeup::comb {

TransmissionSet::TransmissionSet(std::uint32_t n, const std::vector<Station>& members)
    : bits_(n) {
  for (Station u : members) bits_.set(u);
  members_ = bits_.to_indices();
}

TransmissionSet::TransmissionSet(util::DynamicBitset bits) : bits_(std::move(bits)) {
  members_ = bits_.to_indices();
}

TransmissionSet TransmissionSet::universe_set(std::uint32_t n) {
  util::DynamicBitset b(n);
  for (std::uint32_t u = 0; u < n; ++u) b.set(u);
  return TransmissionSet(std::move(b));
}

TransmissionSet TransmissionSet::singleton(std::uint32_t n, Station u) {
  util::DynamicBitset b(n);
  b.set(u);
  return TransmissionSet(std::move(b));
}

}  // namespace wakeup::comb
