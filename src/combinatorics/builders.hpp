#pragma once

/// \file builders.hpp
/// Constructions of (n,k)-selective families.
///
/// The paper relies on the *existence* of (n,k)-selective families of size
/// O(k log(n/k)) (Komlós–Greenberg, probabilistic method).  This library
/// offers several constructions on a correctness/size trade-off:
///
/// | builder          | guarantee                      | size                    |
/// |------------------|--------------------------------|-------------------------|
/// | bit_splitter     | proven, k <= 2 only            | 2*ceil(log2 n) + 1      |
/// | mod_prime        | proven (strongly selective)    | O(k^2 log^2 n) sets     |
/// | kautz_singleton  | proven (strongly selective)    | q^2, q ~ k log_q n      |
/// | greedy           | proven (explicit cover, small n)| near-optimal, slow build|
/// | randomized       | w.h.p. over the seed           | ceil(c k max(1,log2(n/k)))|
///
/// The randomized builder realizes the paper's existential object and keeps
/// the Θ(k log(n/k)) *size shape* the evaluation reproduces; the proven
/// builders certify correctness in the test suite and serve as drop-in
/// alternatives where certainty matters more than the constant.

#include <cstdint>
#include <string_view>

#include "combinatorics/selective_family.hpp"

namespace wakeup::comb {

/// (n,2)-selective: the universe set followed by, per bit position b, the
/// sets {u : bit b = 0} and {u : bit b = 1}.  Two distinct IDs differ in
/// some bit, so one of the pair isolates; singletons are isolated by the
/// universe set.  Exactly optimal up to the constant 2.
[[nodiscard]] SelectiveFamily build_bit_splitter(std::uint32_t n);

/// Strongly (n,k)-selective via residue classes: sets {u : u ≡ r (mod p)}
/// for the first (k-1)*floor(log2 n)+1 primes and all residues r.  For any
/// |X| <= k and x ∈ X, each y ≠ x shares at most log2(n) primes with
/// x (divisors of |x-y|), so some listed prime separates x from all of X.
[[nodiscard]] SelectiveFamily build_mod_prime(std::uint32_t n, std::uint32_t k);

/// Strongly (n,k)-selective Kautz–Singleton construction: station u is the
/// degree-(L-1) polynomial with u's base-q digits as coefficients; set
/// F_{a,v} = {u : f_u(a) = v} over GF(q), q prime > (k-1)(L-1).  Distinct
/// polynomials agree on < L points, so for any |X| <= k some evaluation
/// point gives x a unique value.  Size q^2.
[[nodiscard]] SelectiveFamily build_kautz_singleton(std::uint32_t n, std::uint32_t k);

/// Explicit greedy cover (derandomized existence proof): enumerates every
/// target subset (size in [k/2, k]) and greedily picks, from a seeded pool
/// of candidate sets plus all singletons, the set isolating the most
/// still-uncovered subsets.  Guaranteed correct and terminating (singletons
/// always make progress); exponential in n, intended for n <= ~20.
[[nodiscard]] SelectiveFamily build_greedy(std::uint32_t n, std::uint32_t k,
                                           std::uint64_t seed);

/// The probabilistic-method object: ceil(c * k * max(1, log2(n/k))) sets,
/// each containing every station independently with probability 1/k
/// (pseudo-randomly from `seed`).  Selective w.h.p.; protocols that
/// concatenate doubling families remain correct even on the rare failing
/// seed because later (larger) families still isolate.
[[nodiscard]] SelectiveFamily build_randomized(std::uint32_t n, std::uint32_t k,
                                               double c, std::uint64_t seed);

/// Builder selector used by protocol configuration.
enum class FamilyKind {
  kRandomized,      ///< default: optimal-shape O(k log(n/k))
  kBitSplitter,     ///< k <= 2 only
  kModPrime,        ///< proven, larger
  kKautzSingleton,  ///< proven, larger
  kGreedy,          ///< proven, small n only
};

[[nodiscard]] std::string_view family_kind_name(FamilyKind kind) noexcept;

/// Default constant for build_randomized, chosen so that sampled
/// verification over realistic (n,k) shows no violations (see tests).
inline constexpr double kDefaultRandomFamilyC = 6.0;

/// Dispatches to the builder for `kind`.  `seed` and `c` are ignored by the
/// deterministic builders.  Falls back to build_randomized when a proven
/// builder cannot handle the parameters (bit splitter with k > 2).
[[nodiscard]] SelectiveFamily build_family(FamilyKind kind, std::uint32_t n, std::uint32_t k,
                                           std::uint64_t seed,
                                           double c = kDefaultRandomFamilyC);

}  // namespace wakeup::comb
