#include "combinatorics/doubling_schedule.hpp"

#include <algorithm>

#include "util/math.hpp"
#include "util/rng.hpp"

namespace wakeup::comb {

DoublingSchedule::DoublingSchedule(const Config& config) : config_(config) {
  const unsigned levels = std::max(1u, util::ceil_log2(std::max<std::uint32_t>(2, config.k_max)));
  std::uint64_t offset = 0;
  for (unsigned j = 1; j <= levels; ++j) {
    if (config.prefix_cap > 0 && !implicit_.empty() && offset >= config.prefix_cap) break;
    const auto kj = static_cast<std::uint32_t>(
        std::min<std::uint64_t>(config.n, util::ipow(2, j)));
    const std::uint64_t family_seed = util::hash_words({config.seed, 0x444246ULL, j});
    ImplicitFamilyPtr fam = make_implicit_family(config.kind, config.n, kj, family_seed, config.c);
    starts_.push_back(offset);
    offset += fam->length();
    implicit_.push_back(std::move(fam));
  }
  period_ = offset;
  materialized_.resize(implicit_.size());
}

const SelectiveFamily& DoublingSchedule::family(std::size_t i) const {
  const std::lock_guard<std::mutex> lock(materialize_mutex_);
  if (!materialized_[i]) {
    materialized_[i] = std::make_shared<const SelectiveFamily>(implicit_[i]->materialize());
  }
  return *materialized_[i];
}

bool DoublingSchedule::transmits(Station u, std::uint64_t idx) const noexcept {
  const Position pos = position(idx);
  return implicit_[pos.family_index]->contains(static_cast<std::size_t>(pos.step), u);
}

std::uint64_t DoublingSchedule::schedule_word(Station u, std::uint64_t from) const noexcept {
  Position pos = position(from);
  std::uint64_t word = 0;
  unsigned filled = 0;
  while (filled < 64) {
    const ImplicitFamily& fam = *implicit_[pos.family_index];
    const auto step = static_cast<std::size_t>(pos.step);
    const auto avail =
        static_cast<unsigned>(std::min<std::uint64_t>(64 - filled, fam.length() - step));
    std::uint64_t bits = fam.membership_word(u, step);
    if (avail < 64) bits &= (std::uint64_t{1} << avail) - 1;
    word |= bits << filled;
    filled += avail;
    pos.family_index = pos.family_index + 1 == implicit_.size() ? 0 : pos.family_index + 1;
    pos.step = 0;
  }
  return word;
}

DoublingSchedule::Position DoublingSchedule::position(std::uint64_t idx) const noexcept {
  const std::uint64_t off = idx % period_;
  // starts_ is sorted; find the last start <= off.
  auto it = std::upper_bound(starts_.begin(), starts_.end(), off);
  const auto fam = static_cast<std::size_t>(std::distance(starts_.begin(), it)) - 1;
  return Position{fam, off - starts_[fam]};
}

bool DoublingSchedule::is_family_start(std::uint64_t idx) const noexcept {
  const std::uint64_t off = idx % period_;
  return std::binary_search(starts_.begin(), starts_.end(), off);
}

std::uint64_t DoublingSchedule::next_family_start(std::uint64_t t) const noexcept {
  const std::uint64_t off = t % period_;
  auto it = std::lower_bound(starts_.begin(), starts_.end(), off);
  if (it != starts_.end()) return t + (*it - off);
  // Wrap to the first start (offset 0) of the next period.
  return t + (period_ - off);
}

DoublingSchedulePtr make_doubling_schedule(const DoublingSchedule::Config& config) {
  return std::make_shared<const DoublingSchedule>(config);
}

}  // namespace wakeup::comb
