#include "combinatorics/waking_verifier.hpp"

#include <algorithm>

namespace wakeup::comb {

std::vector<Station> transmitters_at(const LazyTransmissionMatrix& matrix,
                                     const std::vector<WakeEvent>& wakes, std::int64_t t) {
  std::vector<Station> out;
  const auto& p = matrix.params();
  for (const WakeEvent& e : wakes) {
    if (e.wake > t) continue;
    const auto row = p.row_at(e.wake, t);
    if (!row) continue;
    if (matrix.contains(*row, static_cast<std::uint64_t>(t), e.station)) {
      out.push_back(e.station);
    }
  }
  return out;
}

IsolationResult find_isolation_slot(const LazyTransmissionMatrix& matrix,
                                    const std::vector<WakeEvent>& wakes,
                                    std::int64_t max_slots) {
  IsolationResult result;
  if (wakes.empty()) return result;
  std::int64_t s = wakes.front().wake;
  for (const WakeEvent& e : wakes) s = std::min(s, e.wake);

  for (std::int64_t t = s; t < s + max_slots; ++t) {
    const auto tx = transmitters_at(matrix, wakes, t);
    if (tx.size() == 1) {
      result.isolated = true;
      result.slot = t;
      result.winner = tx.front();
      result.rounds = t - s;
      return result;
    }
  }
  return result;
}

std::vector<std::uint32_t> row_occupancy(const MatrixParams& params,
                                         const std::vector<WakeEvent>& wakes, std::int64_t t) {
  std::vector<std::uint32_t> counts(params.rows + 1, 0);
  for (const WakeEvent& e : wakes) {
    if (e.wake > t) continue;
    const auto row = params.row_at(e.wake, t);
    if (row) ++counts[*row];
  }
  return counts;
}

}  // namespace wakeup::comb
