#include "combinatorics/selective_family.hpp"

namespace wakeup::comb {

std::int64_t SelectiveFamily::first_selecting_step(const util::DynamicBitset& x) const noexcept {
  for (std::size_t j = 0; j < sets_.size(); ++j) {
    if (sets_[j].intersection_count(x) == 1) return static_cast<std::int64_t>(j);
  }
  return -1;
}

}  // namespace wakeup::comb
