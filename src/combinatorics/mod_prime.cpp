#include "combinatorics/builders.hpp"
#include "util/math.hpp"
#include "util/primes.hpp"

namespace wakeup::comb {

SelectiveFamily build_mod_prime(std::uint32_t n, std::uint32_t k) {
  if (k < 1) k = 1;
  if (k > n) k = n;
  // For x != y in [n], |x - y| < n has at most floor(log2 n) prime factors,
  // so (k-1)*floor(log2 n) + 1 primes guarantee one that separates x from
  // every other member of X.
  const unsigned lg = util::floor_log2(n == 0 ? 1 : n);
  const std::size_t prime_count =
      static_cast<std::size_t>(k > 1 ? (k - 1) * (lg == 0 ? 1 : lg) : 0) + 1;
  const auto primes = util::first_primes_from(2, prime_count);

  std::vector<TransmissionSet> sets;
  for (std::uint64_t p : primes) {
    for (std::uint64_t r = 0; r < p; ++r) {
      util::DynamicBitset members(n);
      for (std::uint32_t u = static_cast<std::uint32_t>(r); u < n;
           u += static_cast<std::uint32_t>(p)) {
        members.set(u);
      }
      if (members.any()) sets.emplace_back(std::move(members));
    }
  }
  return SelectiveFamily(FamilyParams{n, k}, std::move(sets), "mod_prime");
}

}  // namespace wakeup::comb
