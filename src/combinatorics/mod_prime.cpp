#include "combinatorics/builders.hpp"
#include "combinatorics/implicit_family.hpp"

namespace wakeup::comb {

SelectiveFamily build_mod_prime(std::uint32_t n, std::uint32_t k) {
  k = detail::clamp_family_k(n, k);
  // Prime window shared with the implicit backend (see
  // detail::mod_prime_primes for the separation argument).
  const auto primes = detail::mod_prime_primes(n, k);

  std::vector<TransmissionSet> sets;
  for (std::uint64_t p : primes) {
    for (std::uint64_t r = 0; r < p; ++r) {
      util::DynamicBitset members(n);
      for (std::uint32_t u = static_cast<std::uint32_t>(r); u < n;
           u += static_cast<std::uint32_t>(p)) {
        members.set(u);
      }
      if (members.any()) sets.emplace_back(std::move(members));
    }
  }
  return SelectiveFamily(FamilyParams{n, k}, std::move(sets), "mod_prime");
}

}  // namespace wakeup::comb
