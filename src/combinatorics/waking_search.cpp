#include "combinatorics/waking_search.hpp"

#include <algorithm>

#include "combinatorics/verifier.hpp"
#include "util/math.hpp"

namespace wakeup::comb {
namespace {

/// Deadline for isolating a contention set of size k: slack * the Theorem
/// 5.3 bound (slack <= 0 makes every pattern fail, useful for testing).
std::int64_t deadline(const WakingSearchConfig& config, std::uint32_t k) {
  const double bound = util::scenario_c_bound(config.n, k == 0 ? 1 : k);
  return static_cast<std::int64_t>(config.slack * bound);
}

/// Runs one pattern; true iff isolated within the deadline.
bool pattern_ok(const LazyTransmissionMatrix& matrix, const std::vector<WakeEvent>& wakes,
                std::int64_t max_rounds, std::int64_t* worst) {
  const auto result = find_isolation_slot(matrix, wakes, max_rounds);
  if (!result.isolated) return false;
  *worst = std::max(*worst, result.rounds);
  return true;
}

}  // namespace

std::optional<std::int64_t> certify_matrix(const LazyTransmissionMatrix& matrix,
                                           const WakingSearchConfig& config,
                                           std::uint64_t* patterns_checked) {
  std::int64_t worst = 0;
  std::uint64_t checked = 0;
  const std::uint32_t n = config.n;

  // Exhaustive part: every subset up to k_exhaustive, staggered by every
  // combination of configured offsets (first station anchored at 0).
  bool ok = true;
  for (std::uint32_t k = 1; k <= config.k_exhaustive && k <= n && ok; ++k) {
    const std::int64_t cap = deadline(config, k);
    for_each_subset(n, k, [&](const std::vector<Station>& subset) {
      // Offset assignments: station i gets offsets[(i * stride) % |offsets|]
      // for a few strides — covers aligned and shifted wakes without the
      // full |offsets|^k blowup.
      for (std::size_t stride = 0; stride < config.offsets.size(); ++stride) {
        std::vector<WakeEvent> wakes;
        wakes.reserve(subset.size());
        for (std::size_t i = 0; i < subset.size(); ++i) {
          const std::int64_t off =
              i == 0 ? 0 : config.offsets[(i * (stride + 1)) % config.offsets.size()];
          wakes.push_back({subset[i], off});
        }
        ++checked;
        if (!pattern_ok(matrix, wakes, cap, &worst)) {
          ok = false;
          return false;
        }
      }
      return true;
    });
  }
  if (!ok) {
    if (patterns_checked) *patterns_checked += checked;
    return std::nullopt;
  }

  // Randomized battery: uniform subsets and wake offsets per size.
  util::Rng rng(util::hash_words({matrix.seed(), 0x43455254ULL /* "CERT" */}));
  for (std::uint32_t k = 2; k <= config.k_random && k <= n; ++k) {
    const std::int64_t cap = deadline(config, k);
    for (std::uint32_t i = 0; i < config.random_patterns_per_k; ++i) {
      const auto subset = random_subset(n, k, rng);
      std::vector<WakeEvent> wakes;
      wakes.reserve(subset.size());
      for (std::size_t j = 0; j < subset.size(); ++j) {
        wakes.push_back({subset[j], j == 0 ? 0 : static_cast<std::int64_t>(rng.uniform(32))});
      }
      ++checked;
      if (!pattern_ok(matrix, wakes, cap, &worst)) {
        if (patterns_checked) *patterns_checked += checked;
        return std::nullopt;
      }
    }
  }

  if (patterns_checked) *patterns_checked += checked;
  return worst;
}

WakingSearchResult find_certified_seed(const WakingSearchConfig& config,
                                       std::uint64_t master_seed) {
  WakingSearchResult result;
  const auto params = MatrixParams::make(config.n, config.c);
  for (std::uint32_t attempt = 0; attempt < config.max_attempts; ++attempt) {
    ++result.attempts;
    const std::uint64_t seed =
        util::hash_words({master_seed, 0x534545444bULL /* "SEEDK" */, attempt});
    const LazyTransmissionMatrix candidate(params, seed);
    const auto worst = certify_matrix(candidate, config, &result.patterns_checked);
    if (worst) {
      result.found = true;
      result.seed = seed;
      result.worst_rounds = *worst;
      return result;
    }
  }
  return result;
}

}  // namespace wakeup::comb
