#include "combinatorics/transmission_matrix.hpp"

namespace wakeup::comb {

MatrixParams MatrixParams::make(std::uint32_t n, unsigned c) {
  MatrixParams p;
  p.n = n;
  p.c = c == 0 ? 1 : c;
  p.rows = util::log2n_clamped(n);
  p.window = util::loglog2n_clamped(n);
  p.ell = 2ULL * p.c * n * p.rows * p.window;
  if (p.ell == 0) p.ell = 1;
  return p;
}

std::uint64_t MatrixParams::total_scan() const noexcept {
  std::uint64_t total = 0;
  for (unsigned i = 1; i <= rows; ++i) total += m(i);
  return total;
}

std::optional<unsigned> MatrixParams::row_at(std::int64_t sigma, std::int64_t t) const noexcept {
  const std::int64_t operative = mu(sigma);
  if (t < operative) return std::nullopt;
  auto offset = static_cast<std::uint64_t>(t - operative);
  offset %= total_scan();  // wrap: restart the scan after exhausting row `rows`
  for (unsigned i = 1; i <= rows; ++i) {
    const std::uint64_t mi = m(i);
    if (offset < mi) return i;
    offset -= mi;
  }
  return rows;  // unreachable: offset < total_scan by construction
}

DenseTransmissionMatrix DenseTransmissionMatrix::materialize(const LazyTransmissionMatrix& lazy) {
  DenseTransmissionMatrix dense;
  dense.params_ = lazy.params();
  const auto& p = dense.params_;
  dense.cells_.reserve(static_cast<std::size_t>(p.rows) * p.ell);
  for (unsigned row = 1; row <= p.rows; ++row) {
    for (std::uint64_t col = 0; col < p.ell; ++col) {
      util::DynamicBitset bits(p.n);
      for (Station u = 0; u < p.n; ++u) {
        if (lazy.contains(row, col, u)) bits.set(u);
      }
      dense.cells_.emplace_back(std::move(bits));
    }
  }
  return dense;
}

}  // namespace wakeup::comb
