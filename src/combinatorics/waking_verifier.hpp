#pragma once

/// \file waking_verifier.hpp
/// Matrix-level check of the waking property (Definition 5.3): given wake
/// times, find the first slot at which exactly one operative station's row
/// membership fires.
///
/// This re-derives the Scenario C execution *directly from the matrix
/// semantics* (µ, m_i row walk, ρ-discounted membership), independently of
/// the protocol/simulator stack, so tests can cross-check the two paths
/// against each other.

#include <cstdint>
#include <optional>
#include <vector>

#include "combinatorics/transmission_matrix.hpp"

namespace wakeup::comb {

struct WakeEvent {
  Station station = 0;
  std::int64_t wake = 0;
};

struct IsolationResult {
  bool isolated = false;
  std::int64_t slot = -1;       ///< first slot with a unique transmitter
  Station winner = 0;
  std::int64_t rounds = -1;     ///< slot - s (the paper's cost measure)
};

/// Scans slots from s = min wake for at most `max_slots` slots.
[[nodiscard]] IsolationResult find_isolation_slot(const LazyTransmissionMatrix& matrix,
                                                  const std::vector<WakeEvent>& wakes,
                                                  std::int64_t max_slots);

/// The stations transmitting at slot t (matrix semantics).  Exposed for the
/// structure benches (Figure 2 reproduction).
[[nodiscard]] std::vector<Station> transmitters_at(const LazyTransmissionMatrix& matrix,
                                                   const std::vector<WakeEvent>& wakes,
                                                   std::int64_t t);

/// |S_{i,t}| per row i (1-based index 0 unused): how many operative stations
/// are conditioned on each row at slot t — the quantity the well-balancedness
/// conditions S1/S2 (§5.2) constrain.
[[nodiscard]] std::vector<std::uint32_t> row_occupancy(const MatrixParams& params,
                                                       const std::vector<WakeEvent>& wakes,
                                                       std::int64_t t);

}  // namespace wakeup::comb
