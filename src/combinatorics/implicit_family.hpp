#pragma once

/// \file implicit_family.hpp
/// Implicit (lazily evaluated) selective families.
///
/// `SelectiveFamily` materializes every transmission set as a bitset over
/// [n] — Θ(length · n / 8) bytes.  That is fine for a single family at
/// n = 2^14, but the doubling concatenations the protocols build (one family
/// per k = 2, 4, 8, ...) blow past any memory budget long before the
/// n = 2^20 frontier.  The constructions in tree do not need the storage:
///
///  * mod-prime       — u ∈ F_{p,r}  iff  u ≡ r (mod p): one modulo.
///  * Kautz–Singleton — u ∈ F_{a,v}  iff  f_u(a) = v over GF(q): one
///                      Horner evaluation of u's base-q digit polynomial.
///  * randomized      — membership is re-derived from (seed, set, u) via the
///                      stateless counter RNG (`util::hash_words`).
///  * bit splitter    — u ∈ set 1+2b+side  iff  bit b of u equals side.
///
/// `ImplicitFamily` exposes exactly that: an O(1)-state `contains(j, u)`
/// query plus a 64-slot `membership_word(u, from)` emitter, so schedule
/// words are *computed* in the hot path instead of loaded.  `materialize()`
/// recovers the equivalent `SelectiveFamily` bit-for-bit (tests and the
/// verifier go through it); `make_implicit_family` mirrors `build_family`'s
/// dispatch so the two stay interchangeable.
///
/// The closed-form helpers shared with the materialized builders live in
/// `detail` — both paths call the same arithmetic, which is what makes the
/// bit-identity guarantee a construction property rather than a test hope.

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "combinatorics/builders.hpp"
#include "combinatorics/selective_family.hpp"

namespace wakeup::comb {

namespace detail {

/// Substream tag for randomized families ("RANDFM").
inline constexpr std::uint64_t kRandomFamilyTag = 0x52414e44464dULL;

/// Clamps k to [1, n] — every builder applies this before anything else.
[[nodiscard]] std::uint32_t clamp_family_k(std::uint32_t n, std::uint32_t k) noexcept;

/// ceil(c * k * max(1, log2(n/k))) with k already clamped — the
/// probabilistic-method family length.
[[nodiscard]] std::size_t randomized_length(std::uint32_t n, std::uint32_t k, double c);

/// Per-(n,k) stream seed for randomized families (k already clamped).
[[nodiscard]] std::uint64_t randomized_stream_seed(std::uint64_t seed, std::uint32_t n,
                                                   std::uint32_t k) noexcept;

/// Counter-RNG membership draw: station u belongs to set j with
/// probability p, as a pure function of (stream_seed, j, u).
[[nodiscard]] bool randomized_member(std::uint64_t stream_seed, std::uint64_t j,
                                     std::uint64_t u, double p) noexcept;

/// Primes used by the mod-prime construction for (n, k already clamped):
/// the first (k-1)*max(1, floor(log2 n)) + 1 primes.
[[nodiscard]] std::vector<std::uint64_t> mod_prime_primes(std::uint32_t n, std::uint32_t k);

/// Number of base-q digits needed to address n ids (at least 1).
[[nodiscard]] unsigned gf_digits_needed(std::uint64_t n, std::uint64_t q) noexcept;

/// Evaluates the polynomial whose coefficients are u's base-q digits at
/// point a over GF(q) (Horner, digits high-to-low).
[[nodiscard]] std::uint64_t gf_poly_eval(std::uint64_t u, std::uint64_t q, unsigned digits,
                                         std::uint64_t a) noexcept;

/// The Kautz–Singleton field size: smallest prime q >= max(2, k) with
/// q > (k-1)(L-1) for L = digits_needed(n, q)  (k already clamped).
[[nodiscard]] std::uint64_t kautz_singleton_q(std::uint32_t n, std::uint32_t k) noexcept;

}  // namespace detail

/// A selective family whose membership is computed, not stored.
///
/// Contract mirrors `SelectiveFamily`: sets are indexed 0..length()-1 and
/// `contains(j, u)` answers whether station u transmits at step j.  Station
/// indices must be < params().n; set indices must be < length().
class ImplicitFamily {
 public:
  virtual ~ImplicitFamily() = default;

  [[nodiscard]] const FamilyParams& params() const noexcept { return params_; }
  [[nodiscard]] std::size_t length() const noexcept { return length_; }
  [[nodiscard]] const std::string& origin() const noexcept { return origin_; }

  /// Does station u belong to set `set_index`?  O(1) state, O(1)-ish work.
  [[nodiscard]] virtual bool contains(std::size_t set_index, Station u) const noexcept = 0;

  /// 64 consecutive membership bits for station u starting at set `from`:
  /// bit j of the result is contains(from + j, u).  Bits at or past
  /// length() are unspecified — callers mask, exactly as with
  /// `ObliviousSchedule::schedule_block`.  The default loops `contains`;
  /// implementations override with run-structured arithmetic.
  [[nodiscard]] virtual std::uint64_t membership_word(Station u, std::size_t from) const;

  /// Materializes the equivalent `SelectiveFamily`, bit-for-bit identical
  /// to the corresponding `build_*` output.  Cold path: tests, the
  /// verifier, and small-n setup only.
  [[nodiscard]] virtual SelectiveFamily materialize() const;

 protected:
  ImplicitFamily(FamilyParams params, std::size_t length, std::string origin)
      : params_(params), length_(length), origin_(std::move(origin)) {}

 private:
  FamilyParams params_{};
  std::size_t length_ = 0;
  std::string origin_;
};

using ImplicitFamilyPtr = std::shared_ptr<const ImplicitFamily>;

/// Implicit counterpart of `build_family`: same dispatch, same fallbacks
/// (bit splitter with k > 2 falls back to randomized), same realized bits.
/// Builders with no closed form (greedy) materialize eagerly behind the
/// interface via `wrap_materialized`.
[[nodiscard]] ImplicitFamilyPtr make_implicit_family(FamilyKind kind, std::uint32_t n,
                                                     std::uint32_t k, std::uint64_t seed,
                                                     double c = kDefaultRandomFamilyC);

/// Adapts an already-materialized family to the implicit interface.
[[nodiscard]] ImplicitFamilyPtr wrap_materialized(SelectiveFamily family);

}  // namespace wakeup::comb
