#include <cmath>

#include "combinatorics/builders.hpp"
#include "util/math.hpp"
#include "util/rng.hpp"

namespace wakeup::comb {

SelectiveFamily build_randomized(std::uint32_t n, std::uint32_t k, double c,
                                 std::uint64_t seed) {
  if (k < 1) k = 1;
  if (k > n) k = n;
  // Length c * k * max(1, log2(n/k)) — the probabilistic-method size.
  const double lg = std::max(1.0, std::log2(static_cast<double>(n) / static_cast<double>(k)));
  const auto length = static_cast<std::size_t>(
      std::ceil(c * static_cast<double>(k) * lg));

  util::Rng rng(util::hash_words({seed, 0x52414e44464dULL /* "RANDFM" */, n, k}));
  const double p = 1.0 / static_cast<double>(k);

  std::vector<TransmissionSet> sets;
  sets.reserve(length);
  for (std::size_t j = 0; j < length; ++j) {
    util::DynamicBitset bits(n);
    for (std::uint32_t u = 0; u < n; ++u) {
      if (rng.bernoulli(p)) bits.set(u);
    }
    sets.emplace_back(std::move(bits));
  }
  return SelectiveFamily(FamilyParams{n, k}, std::move(sets), "randomized");
}

}  // namespace wakeup::comb
