#include "combinatorics/builders.hpp"
#include "combinatorics/implicit_family.hpp"

namespace wakeup::comb {

SelectiveFamily build_randomized(std::uint32_t n, std::uint32_t k, double c,
                                 std::uint64_t seed) {
  k = detail::clamp_family_k(n, k);
  const std::size_t length = detail::randomized_length(n, k, c);
  // Membership is a counter-RNG draw per (set, station) coordinate — a pure
  // function of (stream seed, j, u) rather than a sequential stream, so the
  // implicit backend can re-derive any single bit in O(1) and stay
  // bit-identical to this materialization.
  const std::uint64_t stream_seed = detail::randomized_stream_seed(seed, n, k);
  const double p = 1.0 / static_cast<double>(k);

  std::vector<TransmissionSet> sets;
  sets.reserve(length);
  for (std::size_t j = 0; j < length; ++j) {
    util::DynamicBitset bits(n);
    for (std::uint32_t u = 0; u < n; ++u) {
      if (detail::randomized_member(stream_seed, j, u, p)) bits.set(u);
    }
    sets.emplace_back(std::move(bits));
  }
  return SelectiveFamily(FamilyParams{n, k}, std::move(sets), "randomized");
}

}  // namespace wakeup::comb
