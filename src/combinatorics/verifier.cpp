#include "combinatorics/verifier.hpp"

#include <algorithm>

namespace wakeup::comb {
namespace {

util::DynamicBitset to_bitset(std::uint32_t n, const std::vector<Station>& members) {
  util::DynamicBitset b(n);
  for (Station u : members) b.set(u);
  return b;
}

}  // namespace

void for_each_subset(std::uint32_t n, std::uint32_t size,
                     const std::function<bool(const std::vector<Station>&)>& fn) {
  if (size == 0 || size > n) return;
  std::vector<Station> subset(size);
  // Standard lexicographic combination enumeration.
  for (std::uint32_t i = 0; i < size; ++i) subset[i] = i;
  for (;;) {
    if (!fn(subset)) return;
    // Advance to next combination.
    std::int64_t i = static_cast<std::int64_t>(size) - 1;
    while (i >= 0 && subset[static_cast<std::size_t>(i)] ==
                         n - size + static_cast<std::uint32_t>(i)) {
      --i;
    }
    if (i < 0) return;
    ++subset[static_cast<std::size_t>(i)];
    for (std::size_t j = static_cast<std::size_t>(i) + 1; j < size; ++j) {
      subset[j] = subset[j - 1] + 1;
    }
  }
}

std::vector<Station> random_subset(std::uint32_t n, std::uint32_t size, util::Rng& rng) {
  // Floyd's algorithm: uniform without replacement.
  std::vector<Station> out;
  out.reserve(size);
  util::DynamicBitset chosen(n);
  for (std::uint32_t j = n - size; j < n; ++j) {
    const auto t = static_cast<Station>(rng.uniform(j + 1));
    if (chosen.test(t)) {
      chosen.set(j);
      out.push_back(j);
    } else {
      chosen.set(t);
      out.push_back(t);
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

SelectivityReport verify_exhaustive(const SelectiveFamily& family) {
  SelectivityReport report;
  const auto& p = family.params();
  for (std::uint32_t size = p.lo(); size <= p.hi() && report.ok; ++size) {
    for_each_subset(p.n, size, [&](const std::vector<Station>& subset) {
      ++report.subsets_checked;
      const auto x = to_bitset(p.n, subset);
      if (family.first_selecting_step(x) < 0) {
        report.ok = false;
        report.violation = SelectivityViolation{subset};
        return false;
      }
      return true;
    });
  }
  return report;
}

SelectivityReport verify_sampled(const SelectiveFamily& family, std::uint64_t samples,
                                 util::Rng& rng) {
  SelectivityReport report;
  const auto& p = family.params();
  const std::uint32_t lo = std::min(p.lo(), p.n);
  const std::uint32_t hi = std::min(p.hi(), p.n);
  for (std::uint64_t i = 0; i < samples; ++i) {
    const auto size = static_cast<std::uint32_t>(
        rng.uniform_range(static_cast<std::int64_t>(lo), static_cast<std::int64_t>(hi)));
    const auto subset = random_subset(p.n, size, rng);
    ++report.subsets_checked;
    const auto x = to_bitset(p.n, subset);
    if (family.first_selecting_step(x) < 0) {
      report.ok = false;
      report.violation = SelectivityViolation{subset};
      return report;
    }
  }
  return report;
}

SelectivityReport verify_strong_exhaustive(const SelectiveFamily& family) {
  SelectivityReport report;
  const auto& p = family.params();
  for (std::uint32_t size = 1; size <= p.hi() && size <= p.n && report.ok; ++size) {
    for_each_subset(p.n, size, [&](const std::vector<Station>& subset) {
      ++report.subsets_checked;
      const auto x = to_bitset(p.n, subset);
      // Every member must be isolated by some set.
      for (Station target : subset) {
        bool isolated = false;
        for (std::size_t j = 0; j < family.length(); ++j) {
          if (family.set(j).sole_intersection(x) == static_cast<std::int64_t>(target)) {
            isolated = true;
            break;
          }
        }
        if (!isolated) {
          report.ok = false;
          report.violation = SelectivityViolation{subset};
          return false;
        }
      }
      return true;
    });
  }
  return report;
}

}  // namespace wakeup::comb
