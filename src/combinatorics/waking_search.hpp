#pragma once

/// \file waking_search.hpp
/// Las Vegas search for *certified* waking-matrix seeds — a constructive
/// answer (for small n) to the paper's second open problem: "an efficient
/// implementation of our protocol ... could require an explicit
/// construction of our waking matrices".
///
/// Theorem 5.2 guarantees a random matrix works with probability
/// exponentially close to 1, but offers no certificate.  For moderate n we
/// can *test* a candidate seed against a battery of wake patterns
/// (exhaustive over small contention sets, plus randomized batteries) and
/// keep drawing seeds until one passes — yielding a matrix certified for
/// that battery.  The battery is not the full Definition 5.3 quantifier
/// (that is exponential), so certification is with respect to a documented
/// test universe; tests pin down what is covered.

#include <cstdint>
#include <optional>
#include <vector>

#include "combinatorics/transmission_matrix.hpp"
#include "combinatorics/waking_verifier.hpp"
#include "util/rng.hpp"

namespace wakeup::comb {

struct WakingSearchConfig {
  std::uint32_t n = 16;
  unsigned c = 2;
  /// Maximum contention size covered exhaustively (all subsets of [n] up to
  /// this size, each tested with aligned wake offsets).  Cost grows as
  /// C(n, k_exhaustive), keep small.
  std::uint32_t k_exhaustive = 2;
  /// Randomized battery: patterns per contention size up to k_random.
  std::uint32_t k_random = 8;
  std::uint32_t random_patterns_per_k = 32;
  /// Wake offsets tried for non-first stations in exhaustive mode.
  std::vector<std::int64_t> offsets = {0, 1, 3, 7};
  /// Isolation deadline as a multiple of the k log n log log n bound.
  double slack = 64.0;
  /// Seeds tried before giving up.
  std::uint32_t max_attempts = 64;
};

struct WakingSearchResult {
  bool found = false;
  std::uint64_t seed = 0;          ///< certified seed (valid when found)
  std::uint32_t attempts = 0;      ///< seeds drawn
  std::uint64_t patterns_checked = 0;
  std::int64_t worst_rounds = -1;  ///< slowest isolation seen for the winner
};

/// Checks one matrix against the full battery; returns the worst isolation
/// rounds, or nullopt if some battery pattern fails to isolate in time.
[[nodiscard]] std::optional<std::int64_t> certify_matrix(const LazyTransmissionMatrix& matrix,
                                                         const WakingSearchConfig& config,
                                                         std::uint64_t* patterns_checked);

/// Draws seeds (deterministically from `master_seed`) until one passes the
/// battery.
[[nodiscard]] WakingSearchResult find_certified_seed(const WakingSearchConfig& config,
                                                     std::uint64_t master_seed);

}  // namespace wakeup::comb
