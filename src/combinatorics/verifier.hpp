#pragma once

/// \file verifier.hpp
/// Machine checks of the selectivity property.
///
/// Exhaustive verification enumerates every X ⊆ [n] with |X| in
/// [params.lo(), params.hi()] — exponential, intended for the small-n unit
/// tests that certify the explicit builders.  Sampled verification draws
/// random subsets and is used as a statistical check on the probabilistic
/// builders at realistic sizes.

#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "combinatorics/selective_family.hpp"
#include "util/rng.hpp"

namespace wakeup::comb {

/// A witness that selectivity failed: a subset no set isolates.
struct SelectivityViolation {
  std::vector<Station> subset;
};

struct SelectivityReport {
  bool ok = true;
  std::uint64_t subsets_checked = 0;
  std::optional<SelectivityViolation> violation;  ///< first failure found
};

/// Checks every subset of size in [family.params().lo(), hi()].  Stops at
/// the first violation.  Cost: sum over sizes of C(n, size) * scan cost.
[[nodiscard]] SelectivityReport verify_exhaustive(const SelectiveFamily& family);

/// Checks `samples` uniformly drawn subsets with sizes uniform in
/// [lo, hi].  Stops at the first violation.
[[nodiscard]] SelectivityReport verify_sampled(const SelectiveFamily& family,
                                               std::uint64_t samples, util::Rng& rng);

/// Strong selectivity: for every X with |X| <= k and *every* x ∈ X there is
/// a set F with X ∩ F = {x}.  Strictly stronger than selectivity; the
/// mod-prime and Kautz–Singleton builders guarantee it.  Exhaustive.
[[nodiscard]] SelectivityReport verify_strong_exhaustive(const SelectiveFamily& family);

/// Enumerates all size-`size` subsets of [n], invoking `fn` on each (as a
/// sorted member vector).  `fn` returns false to abort enumeration.
/// Exposed for tests and the greedy builder.
void for_each_subset(std::uint32_t n, std::uint32_t size,
                     const std::function<bool(const std::vector<Station>&)>& fn);

/// Draws a uniformly random subset of [n] with exactly `size` members.
[[nodiscard]] std::vector<Station> random_subset(std::uint32_t n, std::uint32_t size,
                                                 util::Rng& rng);

}  // namespace wakeup::comb
