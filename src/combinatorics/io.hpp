#pragma once

/// \file io.hpp
/// Text serialization for combinatorial artifacts, so experiments can pin
/// the exact family/schedule a run used (reproducibility across builds) and
/// the CLI can load externally produced objects.
///
/// Format (line-oriented, '#' comments allowed):
///   selective-family v1
///   n <n> k <k> origin <word>
///   set <m> <id_1> ... <id_m>     # one line per set, in order
///   end

#include <iosfwd>
#include <string>

#include "combinatorics/selective_family.hpp"

namespace wakeup::comb {

/// Writes `family` to `os` in the format above.
void write_family(std::ostream& os, const SelectiveFamily& family);

/// Parses a family; throws std::runtime_error with a line-numbered message
/// on malformed input (unknown header, ids out of range, missing end).
[[nodiscard]] SelectiveFamily read_family(std::istream& is);

/// File convenience wrappers (throw std::runtime_error on I/O failure).
void save_family(const std::string& path, const SelectiveFamily& family);
[[nodiscard]] SelectiveFamily load_family(const std::string& path);

}  // namespace wakeup::comb
