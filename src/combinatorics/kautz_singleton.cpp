#include "combinatorics/builders.hpp"
#include "util/math.hpp"
#include "util/primes.hpp"

namespace wakeup::comb {
namespace {

/// Number of base-q digits needed to address n ids (at least 1).
unsigned digits_needed(std::uint64_t n, std::uint64_t q) {
  unsigned d = 1;
  std::uint64_t span = q;
  while (span < n) {
    span *= q;
    ++d;
  }
  return d;
}

/// Evaluates the polynomial whose coefficients are u's base-q digits at
/// point a over GF(q) (Horner, digits high-to-low).
std::uint64_t poly_eval(std::uint64_t u, std::uint64_t q, unsigned digits, std::uint64_t a) {
  // Extract digits little-endian, evaluate via Horner from the top.
  std::uint64_t coeff[64];
  for (unsigned d = 0; d < digits; ++d) {
    coeff[d] = u % q;
    u /= q;
  }
  std::uint64_t acc = 0;
  for (unsigned d = digits; d-- > 0;) {
    acc = (acc * a + coeff[d]) % q;
  }
  return acc;
}

}  // namespace

SelectiveFamily build_kautz_singleton(std::uint32_t n, std::uint32_t k) {
  if (k < 1) k = 1;
  if (k > n) k = n;
  // Fixed point: q prime with q > (k-1)*(L-1) where L = digits base q.
  std::uint64_t q = util::next_prime(std::max<std::uint64_t>(2, k));
  for (;;) {
    const unsigned L = digits_needed(n, q);
    const std::uint64_t need = static_cast<std::uint64_t>(k - 1) * (L - 1) + 1;
    if (q >= need) break;
    q = util::next_prime(need);
  }
  const unsigned L = digits_needed(n, q);
  (void)L;

  std::vector<TransmissionSet> sets;
  sets.reserve(static_cast<std::size_t>(q) * static_cast<std::size_t>(q));
  const unsigned digits = digits_needed(n, q);
  // Precompute each station's codeword symbol per evaluation point.
  for (std::uint64_t a = 0; a < q; ++a) {
    std::vector<util::DynamicBitset> by_value(static_cast<std::size_t>(q),
                                              util::DynamicBitset(n));
    for (std::uint32_t u = 0; u < n; ++u) {
      by_value[static_cast<std::size_t>(poly_eval(u, q, digits, a))].set(u);
    }
    for (auto& bits : by_value) {
      if (bits.any()) sets.emplace_back(std::move(bits));
    }
  }
  return SelectiveFamily(FamilyParams{n, k}, std::move(sets), "kautz_singleton");
}

}  // namespace wakeup::comb
