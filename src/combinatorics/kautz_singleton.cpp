#include "combinatorics/builders.hpp"
#include "combinatorics/implicit_family.hpp"

namespace wakeup::comb {

SelectiveFamily build_kautz_singleton(std::uint32_t n, std::uint32_t k) {
  k = detail::clamp_family_k(n, k);
  // Field size and digit arithmetic shared with the implicit backend.
  const std::uint64_t q = detail::kautz_singleton_q(n, k);
  const unsigned digits = detail::gf_digits_needed(n, q);

  std::vector<TransmissionSet> sets;
  sets.reserve(static_cast<std::size_t>(q) * static_cast<std::size_t>(q));
  // Precompute each station's codeword symbol per evaluation point.
  for (std::uint64_t a = 0; a < q; ++a) {
    std::vector<util::DynamicBitset> by_value(static_cast<std::size_t>(q),
                                              util::DynamicBitset(n));
    for (std::uint32_t u = 0; u < n; ++u) {
      by_value[static_cast<std::size_t>(detail::gf_poly_eval(u, q, digits, a))].set(u);
    }
    for (auto& bits : by_value) {
      if (bits.any()) sets.emplace_back(std::move(bits));
    }
  }
  return SelectiveFamily(FamilyParams{n, k}, std::move(sets), "kautz_singleton");
}

}  // namespace wakeup::comb
