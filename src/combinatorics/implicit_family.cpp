#include "combinatorics/implicit_family.hpp"

#include <algorithm>
#include <cmath>

#include "util/math.hpp"
#include "util/primes.hpp"
#include "util/rng.hpp"

namespace wakeup::comb {

namespace detail {

std::uint32_t clamp_family_k(std::uint32_t n, std::uint32_t k) noexcept {
  if (k < 1) k = 1;
  if (k > n) k = n;
  return k;
}

std::size_t randomized_length(std::uint32_t n, std::uint32_t k, double c) {
  // Length c * k * max(1, log2(n/k)) — the probabilistic-method size.
  const double lg = std::max(1.0, std::log2(static_cast<double>(n) / static_cast<double>(k)));
  return static_cast<std::size_t>(std::ceil(c * static_cast<double>(k) * lg));
}

std::uint64_t randomized_stream_seed(std::uint64_t seed, std::uint32_t n,
                                     std::uint32_t k) noexcept {
  return util::hash_words({seed, kRandomFamilyTag, n, k});
}

bool randomized_member(std::uint64_t stream_seed, std::uint64_t j, std::uint64_t u,
                       double p) noexcept {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  // One counter-RNG draw per (set, station) coordinate — same 53-bit
  // uniform-in-[0,1) construction as util::Rng::uniform01, but as a pure
  // function of the coordinates so membership is random-accessible.
  const double draw =
      static_cast<double>(util::hash_words({stream_seed, j, u}) >> 11) * 0x1.0p-53;
  return draw < p;
}

std::vector<std::uint64_t> mod_prime_primes(std::uint32_t n, std::uint32_t k) {
  // For x != y in [n], |x - y| < n has at most floor(log2 n) prime factors,
  // so (k-1)*floor(log2 n) + 1 primes guarantee one that separates x from
  // every other member of X.
  const unsigned lg = util::floor_log2(n == 0 ? 1 : n);
  const std::size_t prime_count =
      static_cast<std::size_t>(k > 1 ? (k - 1) * (lg == 0 ? 1 : lg) : 0) + 1;
  return util::first_primes_from(2, prime_count);
}

unsigned gf_digits_needed(std::uint64_t n, std::uint64_t q) noexcept {
  unsigned d = 1;
  std::uint64_t span = q;
  while (span < n) {
    span *= q;
    ++d;
  }
  return d;
}

std::uint64_t gf_poly_eval(std::uint64_t u, std::uint64_t q, unsigned digits,
                           std::uint64_t a) noexcept {
  // Extract digits little-endian, evaluate via Horner from the top.
  std::uint64_t coeff[64];
  for (unsigned d = 0; d < digits; ++d) {
    coeff[d] = u % q;
    u /= q;
  }
  std::uint64_t acc = 0;
  for (unsigned d = digits; d-- > 0;) {
    acc = (acc * a + coeff[d]) % q;
  }
  return acc;
}

std::uint64_t kautz_singleton_q(std::uint32_t n, std::uint32_t k) noexcept {
  // Fixed point: q prime with q > (k-1)*(L-1) where L = digits base q.
  std::uint64_t q = util::next_prime(std::max<std::uint64_t>(2, k));
  for (;;) {
    const unsigned L = gf_digits_needed(n, q);
    const std::uint64_t need = static_cast<std::uint64_t>(k - 1) * (L - 1) + 1;
    if (q >= need) break;
    q = util::next_prime(need);
  }
  return q;
}

}  // namespace detail

std::uint64_t ImplicitFamily::membership_word(Station u, std::size_t from) const {
  const std::size_t end = from < length() ? std::min<std::size_t>(length() - from, 64) : 0;
  std::uint64_t word = 0;
  for (std::size_t j = 0; j < end; ++j) {
    if (contains(from + j, u)) word |= std::uint64_t{1} << j;
  }
  return word;
}

SelectiveFamily ImplicitFamily::materialize() const {
  const std::uint32_t n = params_.n;
  std::vector<TransmissionSet> sets;
  sets.reserve(length_);
  for (std::size_t j = 0; j < length_; ++j) {
    util::DynamicBitset bits(n);
    for (Station u = 0; u < n; ++u) {
      if (contains(j, u)) bits.set(u);
    }
    sets.emplace_back(std::move(bits));
  }
  return SelectiveFamily(params_, std::move(sets), origin_);
}

namespace {

/// Mod-prime residue classes, evaluated as `u % p == r`.  Sets appear in
/// the builder's order: per prime p (ascending), residues r ascending with
/// empty residues skipped — which is exactly the tail r >= n when p > n, so
/// each prime contributes a run of min(p, n) sets and the within-run index
/// *is* the residue.
class ImplicitModPrime final : public ImplicitFamily {
 public:
  ImplicitModPrime(std::uint32_t n, std::uint32_t k)
      : ImplicitModPrime(n, detail::clamp_family_k(n, k),
                         detail::mod_prime_primes(n, detail::clamp_family_k(n, k))) {}

  bool contains(std::size_t set_index, Station u) const noexcept override {
    const std::size_t run = run_index(set_index);
    const std::uint64_t p = primes_[run];
    return u % p == set_index - offsets_[run];
  }

  std::uint64_t membership_word(Station u, std::size_t from) const override {
    if (from >= length()) return 0;
    const std::size_t end = std::min(length(), from + 64);
    std::uint64_t word = 0;
    std::size_t run = run_index(from);
    std::size_t j = from;
    while (j < end) {
      const std::uint64_t p = primes_[run];
      const std::size_t take_end = std::min(end, offsets_[run + 1]);
      // The one set of this prime's run containing u sits at residue u % p.
      const std::size_t target = offsets_[run] + static_cast<std::size_t>(u % p);
      if (target >= j && target < take_end) word |= std::uint64_t{1} << (target - from);
      j = take_end;
      ++run;
    }
    return word;
  }

 private:
  ImplicitModPrime(std::uint32_t n, std::uint32_t k, std::vector<std::uint64_t> primes)
      : ImplicitFamily(FamilyParams{n, k}, total_sets(n, primes), "mod_prime"),
        primes_(std::move(primes)) {
    offsets_.reserve(primes_.size() + 1);
    offsets_.push_back(0);
    for (std::uint64_t p : primes_) {
      offsets_.push_back(offsets_.back() +
                         static_cast<std::size_t>(std::min<std::uint64_t>(p, n)));
    }
  }

  static std::size_t total_sets(std::uint32_t n, const std::vector<std::uint64_t>& primes) {
    std::size_t total = 0;
    for (std::uint64_t p : primes) total += static_cast<std::size_t>(std::min<std::uint64_t>(p, n));
    return total;
  }

  [[nodiscard]] std::size_t run_index(std::size_t set_index) const noexcept {
    const auto it = std::upper_bound(offsets_.begin(), offsets_.end(), set_index);
    return static_cast<std::size_t>(it - offsets_.begin()) - 1;
  }

  std::vector<std::uint64_t> primes_;
  std::vector<std::size_t> offsets_;  ///< prefix sums of min(p, n), size primes+1
};

/// Kautz–Singleton, evaluated as `f_u(a) == v` over GF(q).  Sets appear in
/// the builder's order: per evaluation point a (ascending), values v
/// ascending with empty value-sets skipped.  Every station u < min(q, n)
/// has f_u(a) = u at every point (its digit polynomial is the constant u),
/// so exactly the values 0..min(q,n)-1 are hit: each point contributes a
/// uniform run of spp = min(q, n) sets and the within-run index is v.
class ImplicitKautzSingleton final : public ImplicitFamily {
 public:
  ImplicitKautzSingleton(std::uint32_t n, std::uint32_t k)
      : ImplicitKautzSingleton(n, detail::clamp_family_k(n, k),
                               detail::kautz_singleton_q(n, detail::clamp_family_k(n, k))) {}

  bool contains(std::size_t set_index, Station u) const noexcept override {
    const std::uint64_t a = set_index / spp_;
    const std::uint64_t v = set_index % spp_;
    return detail::gf_poly_eval(u, q_, digits_, a) == v;
  }

  std::uint64_t membership_word(Station u, std::size_t from) const override {
    if (from >= length() || spp_ == 0) return 0;
    const std::size_t end = std::min(length(), from + 64);
    std::uint64_t word = 0;
    std::size_t j = from;
    while (j < end) {
      const std::uint64_t a = j / spp_;
      const std::size_t run_start = static_cast<std::size_t>(a * spp_);
      const std::size_t take_end = std::min(end, run_start + static_cast<std::size_t>(spp_));
      // One polynomial evaluation yields u's set within this point's run.
      const std::size_t target =
          run_start + static_cast<std::size_t>(detail::gf_poly_eval(u, q_, digits_, a));
      if (target >= j && target < take_end) word |= std::uint64_t{1} << (target - from);
      j = take_end;
    }
    return word;
  }

 private:
  ImplicitKautzSingleton(std::uint32_t n, std::uint32_t k, std::uint64_t q)
      : ImplicitFamily(FamilyParams{n, k},
                       static_cast<std::size_t>(q * std::min<std::uint64_t>(q, n)),
                       "kautz_singleton"),
        q_(q),
        digits_(detail::gf_digits_needed(n, q)),
        spp_(std::min<std::uint64_t>(q, n)) {}

  std::uint64_t q_;
  unsigned digits_;
  std::uint64_t spp_;  ///< sets per evaluation point: min(q, n)
};

/// Randomized family re-derived per coordinate from the counter RNG — the
/// same draws `build_randomized` makes, as a pure function of
/// (stream seed, set, station).
class ImplicitRandomized final : public ImplicitFamily {
 public:
  ImplicitRandomized(std::uint32_t n, std::uint32_t k, double c, std::uint64_t seed)
      : ImplicitRandomized(n, detail::clamp_family_k(n, k), c, seed, 0) {}

  bool contains(std::size_t set_index, Station u) const noexcept override {
    return detail::randomized_member(stream_seed_, set_index, u, p_);
  }

  std::uint64_t membership_word(Station u, std::size_t from) const override {
    const std::size_t end = from < length() ? std::min<std::size_t>(length() - from, 64) : 0;
    std::uint64_t word = 0;
    for (std::size_t j = 0; j < end; ++j) {
      if (detail::randomized_member(stream_seed_, from + j, u, p_)) {
        word |= std::uint64_t{1} << j;
      }
    }
    return word;
  }

 private:
  ImplicitRandomized(std::uint32_t n, std::uint32_t k, double c, std::uint64_t seed, int)
      : ImplicitFamily(FamilyParams{n, k}, detail::randomized_length(n, k, c), "randomized"),
        stream_seed_(detail::randomized_stream_seed(seed, n, k)),
        p_(1.0 / static_cast<double>(k)) {}

  std::uint64_t stream_seed_;
  double p_;
};

/// (n,2) bit splitter: set 0 is the universe; set 1 + 2b + side holds the
/// stations whose bit b equals side.
class ImplicitBitSplitter final : public ImplicitFamily {
 public:
  explicit ImplicitBitSplitter(std::uint32_t n)
      : ImplicitFamily(FamilyParams{n, 2},
                       1 + 2 * static_cast<std::size_t>(util::ceil_log2(n)), "bit_splitter") {}

  bool contains(std::size_t set_index, Station u) const noexcept override {
    if (set_index == 0) return true;  // universe set
    const unsigned b = static_cast<unsigned>((set_index - 1) / 2);
    const std::uint32_t side = static_cast<std::uint32_t>((set_index - 1) % 2);
    return ((u >> b) & 1u) == side;
  }
};

/// Eagerly materialized family behind the implicit interface (greedy, and
/// any caller-supplied family via wrap_materialized).
class MaterializedImplicit final : public ImplicitFamily {
 public:
  explicit MaterializedImplicit(SelectiveFamily family)
      : ImplicitFamily(family.params(), family.length(), family.origin()),
        family_(std::move(family)) {}

  bool contains(std::size_t set_index, Station u) const noexcept override {
    return family_.transmits(u, set_index);
  }

  SelectiveFamily materialize() const override { return family_; }

 private:
  SelectiveFamily family_;
};

}  // namespace

ImplicitFamilyPtr make_implicit_family(FamilyKind kind, std::uint32_t n, std::uint32_t k,
                                       std::uint64_t seed, double c) {
  switch (kind) {
    case FamilyKind::kBitSplitter:
      if (k <= 2) return std::make_shared<ImplicitBitSplitter>(n);
      // splitter cannot handle k > 2 — same fallback as build_family
      return std::make_shared<ImplicitRandomized>(n, k, c, seed);
    case FamilyKind::kModPrime:
      return std::make_shared<ImplicitModPrime>(n, k);
    case FamilyKind::kKautzSingleton:
      return std::make_shared<ImplicitKautzSingleton>(n, k);
    case FamilyKind::kGreedy:
      return wrap_materialized(build_greedy(n, k, seed));
    case FamilyKind::kRandomized:
      break;
  }
  return std::make_shared<ImplicitRandomized>(n, k, c, seed);
}

ImplicitFamilyPtr wrap_materialized(SelectiveFamily family) {
  return std::make_shared<MaterializedImplicit>(std::move(family));
}

}  // namespace wakeup::comb
