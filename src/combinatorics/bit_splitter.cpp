#include "combinatorics/builders.hpp"
#include "util/math.hpp"

namespace wakeup::comb {

SelectiveFamily build_bit_splitter(std::uint32_t n) {
  std::vector<TransmissionSet> sets;
  // The universe set isolates every singleton X = {x}.
  sets.push_back(TransmissionSet::universe_set(n));
  const unsigned bits = util::ceil_log2(n);
  for (unsigned b = 0; b < bits; ++b) {
    util::DynamicBitset zero(n);
    util::DynamicBitset one(n);
    for (std::uint32_t u = 0; u < n; ++u) {
      if ((u >> b) & 1u) {
        one.set(u);
      } else {
        zero.set(u);
      }
    }
    sets.emplace_back(std::move(zero));
    sets.emplace_back(std::move(one));
  }
  return SelectiveFamily(FamilyParams{n, 2}, std::move(sets), "bit_splitter");
}

}  // namespace wakeup::comb
