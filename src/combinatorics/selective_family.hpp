#pragma once

/// \file selective_family.hpp
/// (n,k)-selective families — the combinatorial engine of Scenarios A and B.
///
/// Definition (paper §3): a family F of subsets of [n] is (n,k)-selective,
/// 2 <= k <= n, if for every X ⊆ [n] with k/2 <= |X| <= k there exists F ∈ F
/// with |X ∩ F| = 1.  A station transmitting "according to" a family
/// transmits at step j iff it belongs to the j-th set.

#include <cstdint>
#include <string>
#include <vector>

#include "combinatorics/transmission_set.hpp"

namespace wakeup::comb {

/// Parameters a family was built for.
struct FamilyParams {
  std::uint32_t n = 0;  ///< universe size
  std::uint32_t k = 0;  ///< selectivity target: covers |X| in [ceil(k/2), k]

  /// Smallest subset size the family must select from (ceil(k/2), min 1).
  [[nodiscard]] std::uint32_t lo() const noexcept { return k <= 1 ? 1 : (k + 1) / 2; }
  /// Largest subset size the family must select from.
  [[nodiscard]] std::uint32_t hi() const noexcept { return k; }
};

/// An ordered sequence of transmission sets claimed to be (n,k)-selective.
/// Whether the claim is machine-checked depends on the builder (see
/// builders.hpp); `verifier.hpp` provides exhaustive and sampled checks.
class SelectiveFamily {
 public:
  SelectiveFamily() = default;
  SelectiveFamily(FamilyParams params, std::vector<TransmissionSet> sets, std::string origin)
      : params_(params), sets_(std::move(sets)), origin_(std::move(origin)) {}

  [[nodiscard]] const FamilyParams& params() const noexcept { return params_; }
  [[nodiscard]] std::size_t length() const noexcept { return sets_.size(); }
  [[nodiscard]] bool empty() const noexcept { return sets_.empty(); }
  [[nodiscard]] const TransmissionSet& set(std::size_t j) const noexcept { return sets_[j]; }
  [[nodiscard]] const std::vector<TransmissionSet>& sets() const noexcept { return sets_; }

  /// Which builder produced this family (for reports).
  [[nodiscard]] const std::string& origin() const noexcept { return origin_; }

  /// Does station u transmit at step j of this family?
  [[nodiscard]] bool transmits(Station u, std::size_t j) const noexcept {
    return sets_[j].contains(u);
  }

  /// First step j at which |X ∩ F_j| == 1, or -1 if none.  X is a bitset
  /// over [n].  This is the quantity the wake-up analysis bounds.
  [[nodiscard]] std::int64_t first_selecting_step(const util::DynamicBitset& x) const noexcept;

 private:
  FamilyParams params_{};
  std::vector<TransmissionSet> sets_;
  std::string origin_;
};

}  // namespace wakeup::comb
