#pragma once

/// \file transmission_set.hpp
/// A transmission set: the subset of station IDs allowed to transmit in one
/// slot.  Selective families, schedules and the Scenario C transmission
/// matrix are all sequences of these.

#include <cstdint>
#include <vector>

#include "util/dynamic_bitset.hpp"

namespace wakeup::comb {

/// Stations are indexed 0..n-1 (the paper uses 1..n).
using Station = std::uint32_t;

/// Immutable set of stations over a universe [n], with O(1) membership and
/// word-parallel intersection against caller-supplied bitsets.
class TransmissionSet {
 public:
  TransmissionSet() = default;

  /// Builds from explicit member list (duplicates ignored). `n` is the
  /// universe size; members must be < n.
  TransmissionSet(std::uint32_t n, const std::vector<Station>& members);

  /// Builds directly from a bitset of size n.
  explicit TransmissionSet(util::DynamicBitset bits);

  [[nodiscard]] std::uint32_t universe() const noexcept {
    return static_cast<std::uint32_t>(bits_.size());
  }
  [[nodiscard]] bool contains(Station u) const noexcept { return bits_.test(u); }
  [[nodiscard]] std::size_t size() const noexcept { return members_.size(); }
  [[nodiscard]] bool empty() const noexcept { return members_.empty(); }

  /// Sorted member list.
  [[nodiscard]] const std::vector<Station>& members() const noexcept { return members_; }
  [[nodiscard]] const util::DynamicBitset& bits() const noexcept { return bits_; }

  /// |this ∩ X| for a caller-side station bitset of the same universe.
  [[nodiscard]] std::size_t intersection_count(const util::DynamicBitset& x) const noexcept {
    return bits_.intersection_count(x);
  }

  /// The unique element of this ∩ X if the intersection is a singleton,
  /// -1 otherwise (the selectivity query).
  [[nodiscard]] std::int64_t sole_intersection(const util::DynamicBitset& x) const noexcept {
    return bits_.sole_intersection(x);
  }

  /// The full universe set [n].
  [[nodiscard]] static TransmissionSet universe_set(std::uint32_t n);

  /// The singleton {u}.
  [[nodiscard]] static TransmissionSet singleton(std::uint32_t n, Station u);

 private:
  util::DynamicBitset bits_;
  std::vector<Station> members_;
};

}  // namespace wakeup::comb
