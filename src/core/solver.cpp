#include "core/solver.hpp"

#include <stdexcept>

#include "protocols/wakeup_matrix.hpp"
#include "sim/run.hpp"
#include "protocols/wakeup_with_k.hpp"
#include "protocols/wakeup_with_s.hpp"

namespace wakeup::core {

proto::ProtocolPtr make_protocol(const ProblemSpec& spec, const SolverOptions& options) {
  if (!spec.valid()) throw std::invalid_argument("make_protocol: invalid ProblemSpec");
  switch (spec.scenario()) {
    case Scenario::kA_KnownStartTime:
      return proto::make_wakeup_with_s(spec.n, *spec.s, options.family_kind, options.seed,
                                       options.family_c);
    case Scenario::kB_KnownK:
      return proto::make_wakeup_with_k(spec.n, *spec.k, options.family_kind, options.seed,
                                       options.family_c);
    case Scenario::kC_NoKnowledge:
      return std::make_shared<proto::WakeupMatrixProtocol>(spec.n, options.matrix_c,
                                                           options.seed);
  }
  throw std::logic_error("make_protocol: unreachable");
}

sim::SimResult resolve_contention(const ProblemSpec& spec, const mac::WakePattern& pattern,
                                  const SolverOptions& options,
                                  const sim::SimConfig& sim_config) {
  if (pattern.n() != spec.n) {
    throw std::invalid_argument("resolve_contention: pattern universe != spec.n");
  }
  if (spec.k && pattern.k() > *spec.k) {
    throw std::invalid_argument("resolve_contention: more arrivals than the known bound k");
  }
  if (spec.s && !pattern.empty() && pattern.first_wake() != *spec.s) {
    throw std::invalid_argument("resolve_contention: first wake differs from the known s");
  }
  const proto::ProtocolPtr protocol = make_protocol(spec, options);
  return sim::Run({.protocol = protocol.get(), .pattern = &pattern, .sim = sim_config}).sim;
}

}  // namespace wakeup::core
