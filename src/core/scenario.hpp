#pragma once

/// \file scenario.hpp
/// The three knowledge scenarios of the paper and the problem description
/// a user hands to the solver.

#include <cstdint>
#include <optional>
#include <string_view>

#include "mac/types.hpp"

namespace wakeup::core {

/// Which parameters every station knows a priori (paper §1).
enum class Scenario : std::uint8_t {
  kA_KnownStartTime,  ///< n and s known — `wakeup_with_s`
  kB_KnownK,          ///< n and k known — `wakeup_with_k`
  kC_NoKnowledge,     ///< only n known  — `wakeup(n)` via waking matrix
};

[[nodiscard]] constexpr std::string_view to_string(Scenario sc) noexcept {
  switch (sc) {
    case Scenario::kA_KnownStartTime:
      return "A (s known)";
    case Scenario::kB_KnownK:
      return "B (k known)";
    case Scenario::kC_NoKnowledge:
      return "C (no knowledge)";
  }
  return "?";
}

/// What is known about the instance.  `n` is always known (it bounds the ID
/// space); `k` and `s` are optional knowledge that selects the scenario.
struct ProblemSpec {
  std::uint32_t n = 0;
  std::optional<std::uint32_t> k;  ///< upper bound on awake stations, if known
  std::optional<mac::Slot> s;      ///< first wake slot, if known

  /// The strongest scenario the available knowledge permits: A if s is
  /// known (regardless of k), else B if k is known, else C.
  [[nodiscard]] Scenario scenario() const noexcept {
    if (s.has_value()) return Scenario::kA_KnownStartTime;
    if (k.has_value()) return Scenario::kB_KnownK;
    return Scenario::kC_NoKnowledge;
  }

  /// Validates n >= 1, k in [1, n], s >= 0.
  [[nodiscard]] bool valid() const noexcept {
    if (n == 0) return false;
    if (k && (*k == 0 || *k > n)) return false;
    if (s && *s < 0) return false;
    return true;
  }
};

/// The worst-case bound the paper proves for the scenario's algorithm
/// (rounds; for Scenario C the O(k log n log log n) form).  `k_effective`
/// is the contention actually present (used when the spec leaves k
/// unknown).
[[nodiscard]] double theory_bound(const ProblemSpec& spec, std::uint32_t k_effective) noexcept;

}  // namespace wakeup::core
