#pragma once

/// \file solver.hpp
/// The library's front door: pick the paper's algorithm for the knowledge
/// you have, and run it.
///
/// ```cpp
/// wakeup::core::ProblemSpec spec{.n = 1024};
/// spec.k = 16;                                   // Scenario B
/// auto protocol = wakeup::core::make_protocol(spec, {});
/// auto result = wakeup::core::resolve_contention(spec, pattern, {}, {});
/// ```

#include "combinatorics/builders.hpp"
#include "core/scenario.hpp"
#include "protocols/protocol.hpp"
#include "sim/simulator.hpp"

namespace wakeup::core {

/// Tuning knobs for the constructed protocols.
struct SolverOptions {
  std::uint64_t seed = 1;  ///< drives family sampling / matrix instantiation
  comb::FamilyKind family_kind = comb::FamilyKind::kRandomized;
  double family_c = comb::kDefaultRandomFamilyC;  ///< randomized-family length constant
  unsigned matrix_c = 2;                          ///< Scenario C pacing constant
};

/// Builds the paper's algorithm for spec.scenario():
///   A -> wakeup_with_s, B -> wakeup_with_k, C -> wakeup_matrix.
/// Throws std::invalid_argument if !spec.valid().
[[nodiscard]] proto::ProtocolPtr make_protocol(const ProblemSpec& spec,
                                               const SolverOptions& options);

/// One-call convenience: builds the scenario protocol and simulates it
/// against `pattern`.  The pattern must respect the spec (station ids < n,
/// at most k arrivals when k is known, no arrival before s when s is
/// known); violations throw std::invalid_argument.
[[nodiscard]] sim::SimResult resolve_contention(const ProblemSpec& spec,
                                                const mac::WakePattern& pattern,
                                                const SolverOptions& options,
                                                const sim::SimConfig& sim_config);

}  // namespace wakeup::core
