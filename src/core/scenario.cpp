#include "core/scenario.hpp"

#include "util/math.hpp"

namespace wakeup::core {

double theory_bound(const ProblemSpec& spec, std::uint32_t k_effective) noexcept {
  const std::uint32_t k = spec.k.value_or(k_effective);
  switch (spec.scenario()) {
    case Scenario::kA_KnownStartTime:
    case Scenario::kB_KnownK:
      return util::scenario_ab_bound(spec.n, k);
    case Scenario::kC_NoKnowledge:
      return util::scenario_c_bound(spec.n, k_effective);
  }
  return 0.0;
}

}  // namespace wakeup::core
