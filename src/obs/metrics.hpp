#pragma once

/// \file metrics.hpp
/// Cross-layer metrics registry: named counters, gauges and log2 histograms
/// with a deterministic-ordering `metrics.json` exporter.
///
/// Design constraints, in order:
///   1. Observability must never perturb results.  Nothing in the
///      simulation ever *reads* the registry; all writes are side-state.
///   2. Hot word loops pay (at most) one relaxed increment.  Counters are
///      sharded per thread: each thread owns a cache-resident slab of
///      relaxed atomics, so an `add` is a single uncontended load+store.
///      Engine code goes further and accumulates into locals, flushing once
///      per run behind `obs::active()`.
///   3. Compiled out to exactly zero behind the `WAKEUP_OBS` CMake option
///      (default ON).  With WAKEUP_OBS=0 every type below collapses to a
///      no-op stub and `active()` is `constexpr false`, so `if
///      (obs::active())` blocks fold away entirely.
///   4. Disabled-at-runtime fast path: the registry starts disabled; one
///      relaxed bool load gates every flush.  `--metrics`/`--trace`/the
///      heartbeat enable it.
///
/// Handles are interned once (typically in a function-local static) and are
/// trivially copyable; `add`/`set`/`observe` are safe from any thread.
///
/// ```cpp
/// static const auto c_hits = obs::Counter::get("cache.find_hits");
/// if (obs::active()) c_hits.add(local_hits);
/// ```

#include <cstdint>
#include <map>
#include <string>

namespace wakeup::obs {

#if defined(WAKEUP_OBS) && WAKEUP_OBS
inline constexpr bool kCompiled = true;
#else
inline constexpr bool kCompiled = false;
#endif

/// One exported metric value.  Counters and gauges use `value`; histograms
/// fill count/sum/min/max and the log2 `buckets` string ("b:count" pairs,
/// bucket b = values in [2^b, 2^{b+1}), bucket 0 = {0, 1}).
struct MetricValue {
  enum class Kind : std::uint8_t { kCounter, kGauge, kHistogram } kind = Kind::kCounter;
  std::uint64_t value = 0;
  std::uint64_t count = 0;
  std::uint64_t sum = 0;
  std::uint64_t min = 0;
  std::uint64_t max = 0;
  std::string buckets;
};

/// Name-keyed snapshot (std::map — iteration order is the deterministic
/// export order regardless of registration or thread interleaving).
using Snapshot = std::map<std::string, MetricValue>;

#if defined(WAKEUP_OBS) && WAKEUP_OBS

namespace detail {
extern bool g_enabled_relaxed();  // one relaxed atomic load
}

/// True when metrics collection is compiled in AND runtime-enabled.  The
/// canonical guard around every flush site.
[[nodiscard]] inline bool active() noexcept { return detail::g_enabled_relaxed(); }

/// Runtime enable/disable (process-wide).  Disabling does not clear.
void set_enabled(bool enabled) noexcept;

/// Drops every recorded value (counters to 0, gauges to 0, histograms
/// emptied).  Names stay interned.  Tests and benches isolate phases here.
void reset();

/// Merged view over all live and retired thread shards.
[[nodiscard]] Snapshot snapshot();

/// Monotonically increasing event count, sharded per thread.
class Counter {
 public:
  /// Interns `name` (idempotent; the id is stable for the process
  /// lifetime).  Intern at most a few hundred distinct names.
  [[nodiscard]] static Counter get(const std::string& name);
  void add(std::uint64_t delta) const noexcept;
  void inc() const noexcept { add(1); }

 private:
  explicit Counter(std::uint32_t id) : id_(id) {}
  std::uint32_t id_;
};

/// Point-in-time value.  `set` overwrites; `maximize` keeps the running max
/// (peak trackers: backlog, bytes resident).
class Gauge {
 public:
  [[nodiscard]] static Gauge get(const std::string& name);
  void set(std::uint64_t value) const noexcept;
  void maximize(std::uint64_t value) const noexcept;

 private:
  explicit Gauge(std::uint32_t id) : id_(id) {}
  std::uint32_t id_;
};

/// Log2-bucketed distribution (count/sum/min/max + 64 buckets).  Observes
/// take a short registry lock — fine for per-cell/per-run rates, not for
/// per-word loops (accumulate locally and observe once).
class Histogram {
 public:
  [[nodiscard]] static Histogram get(const std::string& name);
  void observe(std::uint64_t value) const noexcept;

 private:
  explicit Histogram(std::uint32_t id) : id_(id) {}
  std::uint32_t id_;
};

#else  // ----------------------------------------------- WAKEUP_OBS=0 stubs

[[nodiscard]] constexpr bool active() noexcept { return false; }
inline void set_enabled(bool) noexcept {}
inline void reset() noexcept {}
[[nodiscard]] inline Snapshot snapshot() { return {}; }

class Counter {
 public:
  [[nodiscard]] static Counter get(const std::string&) { return Counter{}; }
  void add(std::uint64_t) const noexcept {}
  void inc() const noexcept {}
};

class Gauge {
 public:
  [[nodiscard]] static Gauge get(const std::string&) { return Gauge{}; }
  void set(std::uint64_t) const noexcept {}
  void maximize(std::uint64_t) const noexcept {}
};

class Histogram {
 public:
  [[nodiscard]] static Histogram get(const std::string&) { return Histogram{}; }
  void observe(std::uint64_t) const noexcept {}
};

#endif  // WAKEUP_OBS

/// Renders a snapshot as the canonical metrics.json text: top-level
/// {"metrics": {...}} with keys in lexicographic (std::map) order —
/// byte-deterministic for a given snapshot regardless of thread count.
/// Works in both build flavors (an OFF build exports {"metrics": {}}).
[[nodiscard]] std::string metrics_json_text(const Snapshot& snap);

/// The same content as one compact single-line JSON object
/// ({"name": value, ...}) for embedding inside another document — the
/// `metrics` field of bench::JsonReport rows.
[[nodiscard]] std::string metrics_object_text(const Snapshot& snap);

/// snapshot() + metrics_json_text() -> `path`.  Throws std::runtime_error
/// when the file cannot be written.
void write_metrics_json(const std::string& path);

/// Convenience: "hits / (hits + misses)" over a snapshot; 0 when absent or
/// empty.  The heartbeat uses it for the ScheduleCache hit-rate.
[[nodiscard]] double snapshot_ratio(const Snapshot& snap, const std::string& hits,
                                    const std::string& misses);

/// Counter/gauge value by name; 0 when absent.
[[nodiscard]] std::uint64_t snapshot_value(const Snapshot& snap, const std::string& name);

}  // namespace wakeup::obs
