#pragma once

/// \file trace.hpp
/// Chrome trace-event (Perfetto-compatible) exporter.
///
/// Events are recorded as pre-rendered JSON object strings and written as
/// `{"traceEvents":[` + one event per line + `]}` — a format chrome://tracing
/// and ui.perfetto.dev both load, and whose one-event-per-line body lets
/// fleet drivers merge per-worker shard files textually (no JSON parser in
/// the merge path).  Sweep cells render as duration events ("X" phase, one
/// per cell, named by the cell tag); fleet workers get their own process row
/// (pid = worker id, named via a process_name metadata event); ExecutionTrace
/// slot records render as instant events ("i" phase).
///
/// Like the metrics registry, the recorder starts disabled and never
/// perturbs results: timestamps feed only the sidecar file.  In
/// WAKEUP_OBS=0 builds every call is a no-op stub and `write` emits an
/// empty event list.

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace wakeup::mac {
class ExecutionTrace;
}

namespace wakeup::obs {

/// Microseconds since the first call in this process (steady clock) — the
/// "ts" domain of every recorded event.
[[nodiscard]] std::uint64_t trace_now_us();

#if defined(WAKEUP_OBS) && WAKEUP_OBS

/// True when trace recording is runtime-enabled.
[[nodiscard]] bool trace_active() noexcept;
void set_trace_enabled(bool enabled) noexcept;

/// Process row for every subsequent event (fleet workers pass their worker
/// id; the default 0 is the single-process row).  Also emits the
/// process_name metadata event so Perfetto labels the row.
void trace_set_process(std::int64_t pid, const std::string& name);

/// Complete duration event ("ph":"X"): `ts_us`..`ts_us + dur_us` on the
/// calling thread's row.  `args` render as string fields under "args".
void trace_duration(const std::string& name, const std::string& category, std::uint64_t ts_us,
                    std::uint64_t dur_us,
                    const std::vector<std::pair<std::string, std::string>>& args = {});

/// Instant event ("ph":"i", thread scope).
void trace_instant(const std::string& name, const std::string& category, std::uint64_t ts_us);

/// Drops all recorded events (the process row survives).
void trace_clear();

/// Number of events recorded so far (tests).
[[nodiscard]] std::size_t trace_event_count();

#else  // ----------------------------------------------- WAKEUP_OBS=0 stubs

[[nodiscard]] constexpr bool trace_active() noexcept { return false; }
inline void set_trace_enabled(bool) noexcept {}
inline void trace_set_process(std::int64_t, const std::string&) {}
inline void trace_duration(const std::string&, const std::string&, std::uint64_t, std::uint64_t,
                           const std::vector<std::pair<std::string, std::string>>& = {}) {}
inline void trace_instant(const std::string&, const std::string&, std::uint64_t) {}
inline void trace_clear() {}
[[nodiscard]] inline std::size_t trace_event_count() { return 0; }

#endif  // WAKEUP_OBS

/// Writes the recorded events to `path` in the one-event-per-line format.
/// Works in both build flavors (OFF builds write an empty event list).
/// Throws std::runtime_error when the file cannot be written.
void write_trace_json(const std::string& path);

/// Renders every slot of an ExecutionTrace as instant events in the
/// recorder (category "slot", name = the slot outcome, args carry slot
/// number and transmitter count).  `base_ts_us` anchors slot 0; each slot
/// advances 1us so the timeline is legible at any zoom.
void trace_execution(const mac::ExecutionTrace& trace, std::uint64_t base_ts_us);

/// Textually merges per-worker shard files (written by write_trace_json)
/// into `dest`, preserving shard order.  Missing shards are skipped; throws
/// std::runtime_error when dest cannot be written or a shard is malformed.
void merge_trace_shards(const std::vector<std::string>& shard_paths, const std::string& dest);

}  // namespace wakeup::obs
