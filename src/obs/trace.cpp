#include "obs/trace.hpp"

#include <chrono>
#include <cstdio>
#include <fstream>
#include <stdexcept>
#include <utility>

#include "mac/trace.hpp"

#if defined(WAKEUP_OBS) && WAKEUP_OBS
#include <atomic>
#include <mutex>
#endif

namespace wakeup::obs {

namespace {

/// JSON string escaping for event names/args (tags contain only plain
/// ASCII, but protocol names are caller input).
std::string json_escape(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  char buf[8];
  for (const char c : text) {
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      std::snprintf(buf, sizeof buf, "\\u%04x", c);
      out += buf;
    } else {
      out += c;
    }
  }
  return out;
}

}  // namespace

std::uint64_t trace_now_us() {
  using Clock = std::chrono::steady_clock;
  static const Clock::time_point origin = Clock::now();
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() - origin).count());
}

#if defined(WAKEUP_OBS) && WAKEUP_OBS

namespace {

std::atomic<bool> g_trace_enabled{false};

struct TraceState {
  std::mutex mutex;
  std::vector<std::string> events;  ///< pre-rendered JSON objects
  std::int64_t pid = 0;
  std::uint32_t next_tid = 1;
};

TraceState& state() {
  static TraceState* s = new TraceState();  // leaked: threads may outlive main
  return *s;
}

/// Small per-thread lane id so concurrent cells stack into distinct rows.
std::uint32_t local_tid() {
  thread_local std::uint32_t tid = 0;
  if (tid == 0) {
    TraceState& s = state();
    const std::lock_guard<std::mutex> lock(s.mutex);
    tid = s.next_tid++;
  }
  return tid;
}

void push_event(std::string&& rendered) {
  TraceState& s = state();
  const std::lock_guard<std::mutex> lock(s.mutex);
  s.events.push_back(std::move(rendered));
}

std::string event_prefix(const std::string& name, const std::string& category, char phase,
                         std::uint64_t ts_us) {
  char buf[96];
  std::string out = "{\"name\": \"" + json_escape(name) + "\", \"cat\": \"" +
                    json_escape(category) + "\", \"ph\": \"";
  out += phase;
  std::snprintf(buf, sizeof buf, "\", \"ts\": %llu, \"pid\": %lld, \"tid\": %u",
                static_cast<unsigned long long>(ts_us), static_cast<long long>(state().pid),
                local_tid());
  out += buf;
  return out;
}

}  // namespace

bool trace_active() noexcept { return g_trace_enabled.load(std::memory_order_relaxed); }

void set_trace_enabled(bool enabled) noexcept {
  g_trace_enabled.store(enabled, std::memory_order_relaxed);
}

void trace_set_process(std::int64_t pid, const std::string& name) {
  TraceState& s = state();
  const std::lock_guard<std::mutex> lock(s.mutex);
  s.pid = pid;
  char buf[64];
  std::snprintf(buf, sizeof buf, "%lld", static_cast<long long>(pid));
  s.events.push_back("{\"name\": \"process_name\", \"ph\": \"M\", \"pid\": " + std::string(buf) +
                     ", \"args\": {\"name\": \"" + json_escape(name) + "\"}}");
}

void trace_duration(const std::string& name, const std::string& category, std::uint64_t ts_us,
                    std::uint64_t dur_us,
                    const std::vector<std::pair<std::string, std::string>>& args) {
  if (!trace_active()) return;
  std::string event = event_prefix(name, category, 'X', ts_us);
  char buf[48];
  std::snprintf(buf, sizeof buf, ", \"dur\": %llu", static_cast<unsigned long long>(dur_us));
  event += buf;
  if (!args.empty()) {
    event += ", \"args\": {";
    for (std::size_t i = 0; i < args.size(); ++i) {
      event += (i == 0 ? "\"" : ", \"") + json_escape(args[i].first) + "\": \"" +
               json_escape(args[i].second) + "\"";
    }
    event += "}";
  }
  event += "}";
  push_event(std::move(event));
}

void trace_instant(const std::string& name, const std::string& category, std::uint64_t ts_us) {
  if (!trace_active()) return;
  push_event(event_prefix(name, category, 'i', ts_us) + ", \"s\": \"t\"}");
}

void trace_clear() {
  TraceState& s = state();
  const std::lock_guard<std::mutex> lock(s.mutex);
  s.events.clear();
}

std::size_t trace_event_count() {
  TraceState& s = state();
  const std::lock_guard<std::mutex> lock(s.mutex);
  return s.events.size();
}

void write_trace_json(const std::string& path) {
  std::ofstream out(path, std::ios::trunc);
  if (!out.good()) throw std::runtime_error("obs: cannot write " + path);
  TraceState& s = state();
  const std::lock_guard<std::mutex> lock(s.mutex);
  out << "{\"traceEvents\":[\n";
  for (std::size_t i = 0; i < s.events.size(); ++i) {
    out << s.events[i] << (i + 1 < s.events.size() ? ",\n" : "\n");
  }
  out << "]}\n";
}

#else  // WAKEUP_OBS=0: only the exporters have out-of-line stubs.

void write_trace_json(const std::string& path) {
  std::ofstream out(path, std::ios::trunc);
  if (!out.good()) throw std::runtime_error("obs: cannot write " + path);
  out << "{\"traceEvents\":[\n]}\n";
}

#endif  // WAKEUP_OBS

void trace_execution(const mac::ExecutionTrace& trace, std::uint64_t base_ts_us) {
  if (!trace_active()) return;
  for (const mac::SlotRecord& rec : trace.ordered()) {
    trace_instant(std::string(to_string(rec.outcome)) + " @" + std::to_string(rec.slot) + " (" +
                      std::to_string(rec.transmitter_count) + " tx)",
                  "slot", base_ts_us + static_cast<std::uint64_t>(rec.slot));
  }
}

void merge_trace_shards(const std::vector<std::string>& shard_paths, const std::string& dest) {
  std::vector<std::string> events;
  for (const std::string& shard : shard_paths) {
    std::ifstream in(shard);
    if (!in.good()) continue;  // a worker that never traced wrote no shard
    std::string line;
    if (!std::getline(in, line) || line.rfind("{\"traceEvents\":[", 0) != 0) {
      throw std::runtime_error("obs: malformed trace shard " + shard);
    }
    while (std::getline(in, line)) {
      if (line == "]}" || line.empty()) continue;
      if (!line.empty() && line.back() == ',') line.pop_back();
      if (line.empty() || line.front() != '{') {
        throw std::runtime_error("obs: malformed trace shard " + shard);
      }
      events.push_back(line);
    }
  }
  std::ofstream out(dest, std::ios::trunc);
  if (!out.good()) throw std::runtime_error("obs: cannot write " + dest);
  out << "{\"traceEvents\":[\n";
  for (std::size_t i = 0; i < events.size(); ++i) {
    out << events[i] << (i + 1 < events.size() ? ",\n" : "\n");
  }
  out << "]}\n";
}

}  // namespace wakeup::obs
