#include "obs/metrics.hpp"

#include <array>
#include <atomic>
#include <cstdio>
#include <fstream>
#include <mutex>
#include <stdexcept>
#include <vector>

namespace wakeup::obs {

namespace {

/// Renders one "b:count" bucket string (shared by both build flavors via
/// the histogram snapshot path; trivially empty in OFF builds).
std::string bucket_text(const std::array<std::uint64_t, 64>& buckets) {
  std::string out;
  char buf[48];
  for (std::size_t b = 0; b < buckets.size(); ++b) {
    if (buckets[b] == 0) continue;
    std::snprintf(buf, sizeof buf, "%s%zu:%llu", out.empty() ? "" : " ", b,
                  static_cast<unsigned long long>(buckets[b]));
    out += buf;
  }
  return out;
}

}  // namespace

#if defined(WAKEUP_OBS) && WAKEUP_OBS

namespace {

/// Fixed shard capacity: the instrumented layers intern a few dozen names;
/// a fixed slab keeps thread attach/detach allocation-free and the per-add
/// index unchecked after the interning bound check.
constexpr std::size_t kMaxMetrics = 256;

struct Shard {
  std::array<std::atomic<std::uint64_t>, kMaxMetrics> counts{};
};

struct HistogramState {
  std::uint64_t count = 0;
  std::uint64_t sum = 0;
  std::uint64_t min = 0;
  std::uint64_t max = 0;
  std::array<std::uint64_t, 64> buckets{};
};

std::atomic<bool> g_enabled{false};

class Registry {
 public:
  static Registry& instance() {
    static Registry* r = new Registry();  // leaked: threads may outlive main
    return *r;
  }

  std::uint32_t intern(const std::string& name, MetricValue::Kind kind) {
    const std::lock_guard<std::mutex> lock(mutex_);
    for (std::uint32_t i = 0; i < names_.size(); ++i) {
      if (names_[i] == name) return i;
    }
    if (names_.size() >= kMaxMetrics) {
      throw std::runtime_error("obs: metric name capacity exceeded (" + name + ")");
    }
    names_.push_back(name);
    kinds_.push_back(kind);
    retired_.push_back(0);
    gauges_.push_back(0);
    histograms_.emplace_back();
    return static_cast<std::uint32_t>(names_.size() - 1);
  }

  void attach(Shard* shard) {
    const std::lock_guard<std::mutex> lock(mutex_);
    shards_.push_back(shard);
  }

  void detach(Shard* shard) {
    const std::lock_guard<std::mutex> lock(mutex_);
    for (std::size_t i = 0; i < shards_.size(); ++i) {
      if (shards_[i] != shard) continue;
      for (std::size_t m = 0; m < retired_.size(); ++m) {
        retired_[m] += shard->counts[m].load(std::memory_order_relaxed);
      }
      shards_[i] = shards_.back();
      shards_.pop_back();
      return;
    }
  }

  void gauge_set(std::uint32_t id, std::uint64_t value) {
    const std::lock_guard<std::mutex> lock(mutex_);
    gauges_[id] = value;
  }

  void gauge_max(std::uint32_t id, std::uint64_t value) {
    const std::lock_guard<std::mutex> lock(mutex_);
    if (value > gauges_[id]) gauges_[id] = value;
  }

  void observe(std::uint32_t id, std::uint64_t value) {
    const std::lock_guard<std::mutex> lock(mutex_);
    HistogramState& h = histograms_[id];
    if (h.count == 0 || value < h.min) h.min = value;
    if (h.count == 0 || value > h.max) h.max = value;
    ++h.count;
    h.sum += value;
    std::size_t bucket = 0;
    for (std::uint64_t v = value; v > 1; v >>= 1) ++bucket;
    ++h.buckets[bucket];
  }

  Snapshot snapshot() {
    const std::lock_guard<std::mutex> lock(mutex_);
    Snapshot snap;
    for (std::uint32_t m = 0; m < names_.size(); ++m) {
      MetricValue v;
      v.kind = kinds_[m];
      switch (kinds_[m]) {
        case MetricValue::Kind::kCounter: {
          std::uint64_t total = retired_[m];
          for (const Shard* shard : shards_) {
            total += shard->counts[m].load(std::memory_order_relaxed);
          }
          v.value = total;
          break;
        }
        case MetricValue::Kind::kGauge:
          v.value = gauges_[m];
          break;
        case MetricValue::Kind::kHistogram: {
          const HistogramState& h = histograms_[m];
          v.count = h.count;
          v.sum = h.sum;
          v.min = h.min;
          v.max = h.max;
          v.buckets = bucket_text(h.buckets);
          break;
        }
      }
      snap.emplace(names_[m], std::move(v));
    }
    return snap;
  }

  void reset() {
    const std::lock_guard<std::mutex> lock(mutex_);
    for (std::size_t m = 0; m < names_.size(); ++m) {
      retired_[m] = 0;
      gauges_[m] = 0;
      histograms_[m] = HistogramState{};
      for (Shard* shard : shards_) shard->counts[m].store(0, std::memory_order_relaxed);
    }
  }

 private:
  std::mutex mutex_;
  std::vector<std::string> names_;
  std::vector<MetricValue::Kind> kinds_;
  std::vector<std::uint64_t> retired_;  ///< counter totals from exited threads
  std::vector<std::uint64_t> gauges_;
  std::vector<HistogramState> histograms_;
  std::vector<Shard*> shards_;  ///< live thread shards
};

/// Per-thread shard, registered on first use and merged into the retired
/// totals at thread exit.
struct ShardHandle {
  Shard shard;
  ShardHandle() { Registry::instance().attach(&shard); }
  ~ShardHandle() { Registry::instance().detach(&shard); }
};

Shard& local_shard() {
  thread_local ShardHandle handle;
  return handle.shard;
}

}  // namespace

namespace detail {
bool g_enabled_relaxed() { return g_enabled.load(std::memory_order_relaxed); }
}  // namespace detail

void set_enabled(bool enabled) noexcept { g_enabled.store(enabled, std::memory_order_relaxed); }

void reset() { Registry::instance().reset(); }

Snapshot snapshot() { return Registry::instance().snapshot(); }

Counter Counter::get(const std::string& name) {
  return Counter(Registry::instance().intern(name, MetricValue::Kind::kCounter));
}

void Counter::add(std::uint64_t delta) const noexcept {
  // Single-writer slab: a relaxed load+store is a plain add on the owning
  // thread's cache line; concurrent snapshot readers never see torn values.
  std::atomic<std::uint64_t>& slot = local_shard().counts[id_];
  slot.store(slot.load(std::memory_order_relaxed) + delta, std::memory_order_relaxed);
}

Gauge Gauge::get(const std::string& name) {
  return Gauge(Registry::instance().intern(name, MetricValue::Kind::kGauge));
}

void Gauge::set(std::uint64_t value) const noexcept {
  Registry::instance().gauge_set(id_, value);
}

void Gauge::maximize(std::uint64_t value) const noexcept {
  Registry::instance().gauge_max(id_, value);
}

Histogram Histogram::get(const std::string& name) {
  return Histogram(Registry::instance().intern(name, MetricValue::Kind::kHistogram));
}

void Histogram::observe(std::uint64_t value) const noexcept {
  Registry::instance().observe(id_, value);
}

#endif  // WAKEUP_OBS

namespace {

/// One metric's JSON value text, shared by both exporters.
std::string value_text(const MetricValue& v) {
  char buf[64];
  const auto u64 = [&buf](std::uint64_t value) {
    std::snprintf(buf, sizeof buf, "%llu", static_cast<unsigned long long>(value));
    return std::string(buf);
  };
  switch (v.kind) {
    case MetricValue::Kind::kCounter:
    case MetricValue::Kind::kGauge:
      return u64(v.value);
    case MetricValue::Kind::kHistogram:
      return "{\"count\": " + u64(v.count) + ", \"sum\": " + u64(v.sum) +
             ", \"min\": " + u64(v.min) + ", \"max\": " + u64(v.max) + ", \"buckets\": \"" +
             v.buckets + "\"}";
  }
  return "0";  // unreachable
}

}  // namespace

std::string metrics_json_text(const Snapshot& snap) {
  std::string out = "{\n  \"metrics\": {";
  bool first = true;
  for (const auto& [name, v] : snap) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    \"" + name + "\": " + value_text(v);
  }
  out += first ? "}\n}\n" : "\n  }\n}\n";
  return out;
}

std::string metrics_object_text(const Snapshot& snap) {
  std::string out = "{";
  bool first = true;
  for (const auto& [name, v] : snap) {
    if (!first) out += ", ";
    first = false;
    out += "\"" + name + "\": " + value_text(v);
  }
  out += "}";
  return out;
}

void write_metrics_json(const std::string& path) {
  std::ofstream out(path, std::ios::trunc);
  if (!out.good()) throw std::runtime_error("obs: cannot write " + path);
  out << metrics_json_text(snapshot());
}

double snapshot_ratio(const Snapshot& snap, const std::string& hits, const std::string& misses) {
  const double h = static_cast<double>(snapshot_value(snap, hits));
  const double m = static_cast<double>(snapshot_value(snap, misses));
  return h + m > 0 ? h / (h + m) : 0.0;
}

std::uint64_t snapshot_value(const Snapshot& snap, const std::string& name) {
  const auto it = snap.find(name);
  return it == snap.end() ? 0 : it->second.value;
}

}  // namespace wakeup::obs
