#pragma once

/// \file wakeup.hpp
/// Umbrella header for libwakeup — contention resolution on a
/// non-synchronized multiple access channel (De Marco & Kowalski,
/// IPDPS 2013).
///
/// Quickstart:
/// ```cpp
/// #include "wakeup/wakeup.hpp"
/// using namespace wakeup;
///
/// util::Rng rng(42);
/// auto pattern = mac::patterns::staggered(/*n=*/256, /*k=*/8, /*s=*/0,
///                                         /*gap=*/3, rng);
/// core::ProblemSpec spec{.n = 256};               // Scenario C: only n known
/// auto result = core::resolve_contention(spec, pattern, {}, {});
/// // result.rounds is the wake-up cost t - s.
/// ```

#include "core/scenario.hpp"   // IWYU pragma: export
#include "core/solver.hpp"     // IWYU pragma: export

#include "combinatorics/builders.hpp"            // IWYU pragma: export
#include "combinatorics/doubling_schedule.hpp"   // IWYU pragma: export
#include "combinatorics/io.hpp"                  // IWYU pragma: export
#include "combinatorics/selective_family.hpp"    // IWYU pragma: export
#include "combinatorics/transmission_matrix.hpp" // IWYU pragma: export
#include "combinatorics/verifier.hpp"            // IWYU pragma: export
#include "combinatorics/waking_search.hpp"       // IWYU pragma: export
#include "combinatorics/waking_verifier.hpp"     // IWYU pragma: export

#include "exp/aggregator.hpp"    // IWYU pragma: export
#include "exp/manifest.hpp"      // IWYU pragma: export
#include "exp/presets.hpp"       // IWYU pragma: export
#include "exp/sweep_runner.hpp"  // IWYU pragma: export
#include "exp/sweep_spec.hpp"    // IWYU pragma: export

#include "obs/metrics.hpp"  // IWYU pragma: export
#include "obs/trace.hpp"    // IWYU pragma: export

#include "mac/arrival_process.hpp"  // IWYU pragma: export
#include "mac/channel.hpp"       // IWYU pragma: export
#include "mac/multichannel.hpp"  // IWYU pragma: export
#include "mac/pattern_io.hpp"    // IWYU pragma: export
#include "mac/trace.hpp"         // IWYU pragma: export
#include "mac/types.hpp"         // IWYU pragma: export
#include "mac/wake_pattern.hpp"  // IWYU pragma: export

#include "protocols/adaptive_cw.hpp"             // IWYU pragma: export
#include "protocols/aloha.hpp"                   // IWYU pragma: export
#include "protocols/backoff.hpp"                 // IWYU pragma: export
#include "protocols/interleaved.hpp"             // IWYU pragma: export
#include "protocols/local_doubling.hpp"          // IWYU pragma: export
#include "protocols/multichannel.hpp"            // IWYU pragma: export
#include "protocols/protocol.hpp"                // IWYU pragma: export
#include "protocols/registry.hpp"                // IWYU pragma: export
#include "protocols/round_robin.hpp"             // IWYU pragma: export
#include "protocols/rpd.hpp"                     // IWYU pragma: export
#include "protocols/select_among_the_first.hpp"  // IWYU pragma: export
#include "protocols/tree_splitting.hpp"          // IWYU pragma: export
#include "protocols/wait_and_go.hpp"             // IWYU pragma: export
#include "protocols/wakeup_matrix.hpp"           // IWYU pragma: export
#include "protocols/wakeup_with_k.hpp"           // IWYU pragma: export
#include "protocols/wakeup_with_s.hpp"           // IWYU pragma: export

#include "sim/adversary.hpp"       // IWYU pragma: export
#include "sim/batch_engine.hpp"    // IWYU pragma: export
#include "sim/dynamic.hpp"         // IWYU pragma: export
#include "sim/interpreter.hpp"     // IWYU pragma: export
#include "sim/mc_batch_engine.hpp" // IWYU pragma: export
#include "sim/mc_simulator.hpp"    // IWYU pragma: export
#include "sim/results_sink.hpp"    // IWYU pragma: export
#include "sim/run.hpp"             // IWYU pragma: export
#include "sim/simulator.hpp"       // IWYU pragma: export

#include "util/math.hpp"   // IWYU pragma: export
#include "util/rng.hpp"    // IWYU pragma: export
#include "util/simd.hpp"   // IWYU pragma: export
#include "util/stats.hpp"  // IWYU pragma: export
