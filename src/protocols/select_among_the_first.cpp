#include "protocols/select_among_the_first.hpp"

namespace wakeup::proto {
namespace {

class SatfRuntime final : public StationRuntime {
 public:
  SatfRuntime(StationId u, bool participates, Slot s, comb::DoublingSchedulePtr schedule)
      : u_(u), participates_(participates), s_(s), schedule_(std::move(schedule)) {}

  [[nodiscard]] bool transmits(Slot t) override {
    if (!participates_ || t < s_) return false;
    return schedule_->transmits(u_, static_cast<std::uint64_t>(t - s_));
  }

 private:
  StationId u_;
  bool participates_;
  Slot s_;
  comb::DoublingSchedulePtr schedule_;
};

}  // namespace

std::unique_ptr<StationRuntime> SelectAmongTheFirstProtocol::make_runtime(StationId u,
                                                                          Slot wake) const {
  // A station can locally decide participation by comparing its wake time
  // with the known s.
  return std::make_unique<SatfRuntime>(u, wake == s_, s_, schedule_);
}

void SelectAmongTheFirstProtocol::schedule_block(StationId u, Slot wake, Slot from,
                                                 std::uint64_t* out_words,
                                                 std::size_t n_words) const {
  if (wake != s_) {  // non-participants stay silent forever
    for (std::size_t w = 0; w < n_words; ++w) out_words[w] = 0;
    return;
  }
  for (std::size_t w = 0; w < n_words; ++w) {
    const Slot t0 = from + static_cast<Slot>(64 * w);
    if (t0 >= s_) {
      // Whole word past s: one incremental 64-bit pull from the schedule.
      out_words[w] = schedule_->schedule_word(u, static_cast<std::uint64_t>(t0 - s_));
      continue;
    }
    std::uint64_t word = 0;  // boundary block straddling s: per-bit
    for (unsigned j = 0; j < 64; ++j) {
      const Slot t = t0 + static_cast<Slot>(j);
      if (t < s_) continue;
      if (schedule_->transmits(u, static_cast<std::uint64_t>(t - s_))) {
        word |= std::uint64_t{1} << j;
      }
    }
    out_words[w] = word;
  }
}

}  // namespace wakeup::proto
