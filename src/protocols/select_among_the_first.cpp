#include "protocols/select_among_the_first.hpp"

namespace wakeup::proto {
namespace {

class SatfRuntime final : public StationRuntime {
 public:
  SatfRuntime(StationId u, bool participates, Slot s, comb::DoublingSchedulePtr schedule)
      : u_(u), participates_(participates), s_(s), schedule_(std::move(schedule)) {}

  [[nodiscard]] bool transmits(Slot t) override {
    if (!participates_ || t < s_) return false;
    return schedule_->transmits(u_, static_cast<std::uint64_t>(t - s_));
  }

 private:
  StationId u_;
  bool participates_;
  Slot s_;
  comb::DoublingSchedulePtr schedule_;
};

}  // namespace

std::unique_ptr<StationRuntime> SelectAmongTheFirstProtocol::make_runtime(StationId u,
                                                                          Slot wake) const {
  // A station can locally decide participation by comparing its wake time
  // with the known s.
  return std::make_unique<SatfRuntime>(u, wake == s_, s_, schedule_);
}

}  // namespace wakeup::proto
