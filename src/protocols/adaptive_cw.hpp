#pragma once

/// \file adaptive_cw.hpp
/// LBT-style adaptive contention window with a distributed Jain's-fairness
/// controller, for the dynamic-traffic workloads.
///
/// Listen-before-talk baseline: every backlogged station picks a uniform
/// slot inside its current contention window [t, t + cw); a window that
/// expires without the station's own delivery doubles cw (up to cw_max),
/// an own delivery halves it (down to cw_min) — AIMD on the only signal the
/// no-collision-detection channel provides.
///
/// On top of AIMD sits a fairness controller (the DynamicCWController idea
/// from the 5G/Wi-Fi coexistence literature, run *distributed*): each
/// station measures its share of the successes it hears per epoch and
/// compares it against the fair share 1/k.  Over-served stations widen
/// their effective window (a penalty shift), under-served ones narrow it
/// back.  When every share sits at 1/k, Jain's fairness index
/// (sum x)^2 / (k * sum x^2) is exactly 1 — the controller's target.

#include "protocols/protocol.hpp"

namespace wakeup::proto {

class AdaptiveCwProtocol final : public Protocol {
 public:
  struct Config {
    std::uint32_t k = 2;          ///< contention bound -> fair share 1/k
    std::uint32_t cw_min = 8;     ///< smallest contention window, slots
    unsigned cw_max_log2 = 9;     ///< doubling cap: cw <= 2^cw_max_log2
    Slot epoch = 128;             ///< fairness measurement period, slots
    double tolerance = 0.25;      ///< share band: [target/(1+tol), target*(1+tol)]
    std::uint64_t seed = 1;
  };

  explicit AdaptiveCwProtocol(Config config);

  [[nodiscard]] std::string name() const override { return "adaptive_cw"; }
  [[nodiscard]] Requirements requirements() const override {
    Requirements r;
    r.needs_k = true;  // the fair-share target is 1/k
    r.randomized = true;
    return r;
  }

  /// Static (one-shot wake-up) fallback: plain AIMD windowing from cw_min,
  /// no cross-packet state to carry.
  [[nodiscard]] std::unique_ptr<StationRuntime> make_runtime(StationId u,
                                                             Slot wake) const override;

  /// The real protocol: AIMD windows plus the per-epoch fairness penalty,
  /// carried across every packet of the trial.
  [[nodiscard]] std::unique_ptr<DynamicStation> make_dynamic_station(StationId u) const override;

  [[nodiscard]] const Config& config() const noexcept { return config_; }

 private:
  Config config_;
};

}  // namespace wakeup::proto
