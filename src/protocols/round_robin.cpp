#include "protocols/round_robin.hpp"

namespace wakeup::proto {
namespace {

class RoundRobinRuntime final : public StationRuntime {
 public:
  RoundRobinRuntime(StationId u, std::uint32_t n) : u_(u), n_(n) {}

  [[nodiscard]] bool transmits(Slot t) override {
    return static_cast<std::uint32_t>(t % static_cast<Slot>(n_)) == u_;
  }

 private:
  StationId u_;
  std::uint32_t n_;
};

}  // namespace

std::unique_ptr<StationRuntime> RoundRobinProtocol::make_runtime(StationId u, Slot wake) const {
  (void)wake;  // oblivious: the schedule depends only on the global clock
  return std::make_unique<RoundRobinRuntime>(u, n_);
}

}  // namespace wakeup::proto
