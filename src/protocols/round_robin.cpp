#include "protocols/round_robin.hpp"

namespace wakeup::proto {
namespace {

class RoundRobinRuntime final : public StationRuntime {
 public:
  RoundRobinRuntime(StationId u, std::uint32_t n) : u_(u), n_(n) {}

  [[nodiscard]] bool transmits(Slot t) override {
    return static_cast<std::uint32_t>(t % static_cast<Slot>(n_)) == u_;
  }

 private:
  StationId u_;
  std::uint32_t n_;
};

}  // namespace

std::unique_ptr<StationRuntime> RoundRobinProtocol::make_runtime(StationId u, Slot wake) const {
  (void)wake;  // oblivious: the schedule depends only on the global clock
  return std::make_unique<RoundRobinRuntime>(u, n_);
}

void RoundRobinProtocol::schedule_block(StationId u, Slot wake, Slot from,
                                        std::uint64_t* out_words, std::size_t n_words) const {
  (void)wake;  // schedule depends only on the global clock
  if (u >= n_) {  // out-of-universe station: the runtime never transmits
    for (std::size_t w = 0; w < n_words; ++w) out_words[w] = 0;
    return;
  }
  const auto n = static_cast<Slot>(n_);
  for (std::size_t w = 0; w < n_words; ++w) {
    const Slot t0 = from + static_cast<Slot>(64 * w);
    Slot j = (static_cast<Slot>(u) - t0) % n;
    if (j < 0) j += n;
    std::uint64_t word = 0;
    for (; j < 64; j += n) word |= std::uint64_t{1} << j;
    out_words[w] = word;
  }
}

}  // namespace wakeup::proto
