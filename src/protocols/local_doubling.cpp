#include "protocols/local_doubling.hpp"

namespace wakeup::proto {
namespace {

class LocalDoublingRuntime final : public StationRuntime {
 public:
  LocalDoublingRuntime(StationId u, Slot wake, comb::DoublingSchedulePtr schedule)
      : u_(u), wake_(wake), schedule_(std::move(schedule)) {}

  [[nodiscard]] bool transmits(Slot t) override {
    const Slot age = t - wake_;  // local clock: slots since this station woke
    if (age < 0) return false;
    return schedule_->transmits(u_, static_cast<std::uint64_t>(age));
  }

 private:
  StationId u_;
  Slot wake_;
  comb::DoublingSchedulePtr schedule_;
};

}  // namespace

std::unique_ptr<StationRuntime> LocalDoublingProtocol::make_runtime(StationId u,
                                                                    Slot wake) const {
  return std::make_unique<LocalDoublingRuntime>(u, wake, schedule_);
}

ProtocolPtr make_local_doubling(std::uint32_t n, std::uint32_t k_max, comb::FamilyKind kind,
                                std::uint64_t seed, double family_c) {
  comb::DoublingSchedule::Config config;
  config.n = n;
  config.k_max = k_max < 2 ? 2 : k_max;
  config.kind = kind;
  config.seed = seed;
  config.c = family_c;
  return std::make_shared<LocalDoublingProtocol>(comb::make_doubling_schedule(config));
}

}  // namespace wakeup::proto
