#pragma once

/// \file wakeup_matrix.hpp
/// Protocol `wakeup(u, σ)` (paper §5.1) — the Scenario C algorithm, driven
/// by a waking matrix.
///
/// A station woken at σ waits until µ(σ) (next multiple of log log n), then
/// scans the matrix rows top to bottom: row i for m_i = c·2^i·log n·log log n
/// slots, transmitting at slot t iff it belongs to M_{i, t mod ℓ}.
/// Completes wake-up in O(k log n log log n) slots (Theorem 5.3).
///
/// The matrix is the seeded random construction of §5.3 (membership
/// probability 2^{-(i+ρ(j))}), evaluated lazily; see
/// combinatorics/transmission_matrix.hpp for the faithfulness argument.

#include "combinatorics/transmission_matrix.hpp"
#include "protocols/protocol.hpp"

namespace wakeup::proto {

class WakeupMatrixProtocol final : public Protocol, public ObliviousSchedule {
 public:
  /// `c` is the §5.1 constant (schedule pacing and matrix length); `seed`
  /// instantiates the random matrix.
  WakeupMatrixProtocol(std::uint32_t n, unsigned c, std::uint64_t seed)
      : matrix_(comb::MatrixParams::make(n, c),
                util::hash_words({seed, 0x574b4d4154ULL /* "WKMAT" */, n, c})) {}

  explicit WakeupMatrixProtocol(comb::LazyTransmissionMatrix matrix) : matrix_(matrix) {}

  [[nodiscard]] std::string name() const override { return "wakeup_matrix"; }
  [[nodiscard]] Requirements requirements() const override { return {}; }  // knows only n
  [[nodiscard]] std::unique_ptr<StationRuntime> make_runtime(StationId u,
                                                             Slot wake) const override;
  [[nodiscard]] const ObliviousSchedule* oblivious_schedule() const override { return this; }
  void schedule_block(StationId u, Slot wake, Slot from, std::uint64_t* out_words,
                      std::size_t n_words) const override;
  /// Emission depends on the wake only through the operative slot µ(σ).
  /// Past it, the row scan repeats every total_scan() slots and the column
  /// index every ℓ slots: combined period lcm (0 when it overflows).
  [[nodiscard]] std::uint64_t wake_key(Slot wake) const override {
    return static_cast<std::uint64_t>(matrix_.params().mu(wake));
  }
  [[nodiscard]] std::uint64_t period() const override {
    return util::lcm_or_zero(matrix_.params().total_scan(), matrix_.params().ell);
  }
  [[nodiscard]] Slot steady_from(Slot wake) const override { return matrix_.params().mu(wake); }

  [[nodiscard]] const comb::LazyTransmissionMatrix& matrix() const noexcept { return matrix_; }

 private:
  comb::LazyTransmissionMatrix matrix_;
};

}  // namespace wakeup::proto
