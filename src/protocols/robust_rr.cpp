#include "protocols/robust_rr.hpp"

namespace wakeup::proto {
namespace {

class RobustRoundRobinRuntime final : public StationRuntime {
 public:
  RobustRoundRobinRuntime(StationId u, std::uint32_t n, std::uint32_t r)
      : u_(u), n_(n), r_(r) {}

  [[nodiscard]] bool transmits(Slot t) override {
    return static_cast<std::uint32_t>((t / static_cast<Slot>(r_)) % static_cast<Slot>(n_)) ==
           u_;
  }

 private:
  StationId u_;
  std::uint32_t n_;
  std::uint32_t r_;
};

}  // namespace

std::unique_ptr<StationRuntime> RobustRoundRobinProtocol::make_runtime(StationId u,
                                                                       Slot wake) const {
  (void)wake;  // oblivious: the schedule depends only on the global clock
  return std::make_unique<RobustRoundRobinRuntime>(u, n_, r_);
}

void RobustRoundRobinProtocol::schedule_block(StationId u, Slot wake, Slot from,
                                              std::uint64_t* out_words,
                                              std::size_t n_words) const {
  (void)wake;  // schedule depends only on the global clock
  if (u >= n_) {  // out-of-universe station: the runtime never transmits
    for (std::size_t w = 0; w < n_words; ++w) out_words[w] = 0;
    return;
  }
  // Station u's runs are the slots [a, a + r) with a ≡ u·r (mod n·r): walk
  // run boundaries instead of bits, so a word costs O(64/r + 1) iterations.
  const auto r = static_cast<Slot>(r_);
  const auto p = static_cast<Slot>(n_) * r;  // full period
  for (std::size_t w = 0; w < n_words; ++w) {
    const Slot t0 = from + static_cast<Slot>(64 * w);
    // First run start >= t0 - (r - 1) (a run may straddle the word start).
    Slot a = static_cast<Slot>(u) * r + (t0 - static_cast<Slot>(u) * r) / p * p;
    while (a + r <= t0) a += p;
    std::uint64_t word = 0;
    for (; a < t0 + 64; a += p) {
      const Slot lo = a < t0 ? 0 : a - t0;
      const Slot hi = a + r - t0 < 64 ? a + r - t0 : 64;  // exclusive
      if (hi <= lo) continue;
      const std::uint64_t span =
          hi - lo == 64 ? ~std::uint64_t{0}
                        : ((std::uint64_t{1} << (hi - lo)) - 1) << lo;
      word |= span;
    }
    out_words[w] = word;
  }
}

}  // namespace wakeup::proto
