#pragma once

/// \file backoff.hpp
/// Binary exponential backoff (BEB) — the Ethernet-style randomized
/// baseline from the systems the paper's introduction motivates
/// (Abramson's ALOHA [1], Ethernet [2]).
///
/// Each station repeatedly picks a uniform slot within its current window
/// and transmits there; without collision detection the only usable signal
/// is the *absence of a successful message*, so after every window that
/// passes without hearing a success the window doubles (up to a cap).
/// No knowledge of k or s is needed — a natural Scenario C comparator with
/// no worst-case guarantee.

#include "protocols/protocol.hpp"

namespace wakeup::proto {

class BinaryBackoffProtocol final : public Protocol {
 public:
  /// `initial_window` is the first window size (clamped >= 1);
  /// `max_window_log2` caps doubling at 2^cap slots.
  BinaryBackoffProtocol(std::uint32_t initial_window, unsigned max_window_log2,
                        std::uint64_t seed)
      : initial_window_(initial_window < 1 ? 1 : initial_window),
        max_window_log2_(max_window_log2 > 30 ? 30 : max_window_log2),
        seed_(seed) {}

  [[nodiscard]] std::string name() const override { return "binary_backoff"; }
  [[nodiscard]] Requirements requirements() const override {
    Requirements r;
    r.randomized = true;
    return r;
  }
  [[nodiscard]] std::unique_ptr<StationRuntime> make_runtime(StationId u,
                                                             Slot wake) const override;

  /// Dynamic traffic: the window persists across packets as a congestion
  /// estimate (halved on own delivery, doubled on a success-free window).
  [[nodiscard]] std::unique_ptr<DynamicStation> make_dynamic_station(StationId u) const override;

  [[nodiscard]] std::uint32_t initial_window() const noexcept { return initial_window_; }

 private:
  std::uint32_t initial_window_;
  unsigned max_window_log2_;
  std::uint64_t seed_;
};

}  // namespace wakeup::proto
