#include "protocols/wakeup_with_s.hpp"

#include "util/math.hpp"

namespace wakeup::proto {
namespace {

class WakeupWithSRuntime final : public StationRuntime {
 public:
  WakeupWithSRuntime(StationId u, Slot wake, Slot s, std::uint32_t n,
                     comb::DoublingSchedulePtr schedule)
      : u_(u), participates_satf_(wake == s), s_(s), n_(n), schedule_(std::move(schedule)) {}

  [[nodiscard]] bool transmits(Slot t) override {
    const Slot d = t - s_;
    if (d < 0) return false;
    if (d % 2 == 0) {
      // Round-robin half: every awake station takes its TDM turn.
      const Slot v = d / 2;
      return static_cast<std::uint32_t>(v % static_cast<Slot>(n_)) == u_;
    }
    // select_among_the_first half: only stations woken exactly at s.
    if (!participates_satf_) return false;
    const Slot v = (d - 1) / 2;
    return schedule_->transmits(u_, static_cast<std::uint64_t>(v));
  }

 private:
  StationId u_;
  bool participates_satf_;
  Slot s_;
  std::uint32_t n_;
  comb::DoublingSchedulePtr schedule_;
};

}  // namespace

std::uint64_t WakeupWithSProtocol::period() const {
  const std::uint64_t p = util::lcm_or_zero(schedule_->config().n, schedule_->period());
  return p > ~std::uint64_t{0} / 2 ? 0 : 2 * p;
}

std::unique_ptr<StationRuntime> WakeupWithSProtocol::make_runtime(StationId u, Slot wake) const {
  return std::make_unique<WakeupWithSRuntime>(u, wake, s_, schedule_->config().n, schedule_);
}

void WakeupWithSProtocol::schedule_block(StationId u, Slot wake, Slot from,
                                         std::uint64_t* out_words, std::size_t n_words) const {
  const bool participates_satf = wake == s_;
  const auto n = static_cast<Slot>(schedule_->config().n);
  for (std::size_t w = 0; w < n_words; ++w) {
    const Slot t0 = from + static_cast<Slot>(64 * w);
    const Slot d0 = t0 - s_;
    if (d0 < 0) {
      // Boundary block straddling s: per-bit replica of the runtime rule.
      std::uint64_t word = 0;
      for (unsigned j = 0; j < 64; ++j) {
        const Slot d = d0 + static_cast<Slot>(j);
        if (d < 0) continue;
        const bool on = d % 2 == 0
                            ? (d / 2) % n == static_cast<Slot>(u)
                            : participates_satf &&
                                  schedule_->transmits(
                                      u, static_cast<std::uint64_t>((d - 1) / 2));
        if (on) word |= std::uint64_t{1} << j;
      }
      out_words[w] = word;
      continue;
    }
    // Even offsets d = 2v run round-robin at virtual slot v, odd offsets
    // d = 2v + 1 run SATF at v.  The 32 even offsets in this block cover
    // virtual slots (d0+1)/2 ..., the 32 odd ones d0/2 ...; build each
    // 32-bit half and interleave by block parity.
    const Slot ve0 = (d0 + 1) / 2;
    std::uint64_t rr_bits = 0;
    if (static_cast<Slot>(u) < n) {  // out-of-universe stations never get a TDM turn
      Slot i = (static_cast<Slot>(u) - ve0) % n;
      if (i < 0) i += n;
      for (; i < 32; i += n) rr_bits |= std::uint64_t{1} << i;
    }
    const std::uint64_t satf_bits =
        participates_satf ? schedule_->schedule_word(u, static_cast<std::uint64_t>(d0 / 2)) : 0;
    const std::uint64_t rr = util::spread_even_bits32(rr_bits);
    const std::uint64_t satf = util::spread_even_bits32(satf_bits);
    out_words[w] = d0 % 2 == 0 ? (rr | (satf << 1)) : (satf | (rr << 1));
  }
}

ProtocolPtr make_wakeup_with_s(std::uint32_t n, Slot s, comb::FamilyKind kind,
                               std::uint64_t seed, double family_c) {
  comb::DoublingSchedule::Config config;
  config.n = n;
  config.k_max = n;  // s is known but k is not: the ladder must reach any k
  // The round-robin half guarantees success within 2n slots of the first
  // wake (designated stations never collide there), and the SATF half runs
  // set v at slot s + 2v + 1 — so sets at index >= n can never execute
  // before success.  Truncate the concatenation at a prefix of n sets
  // instead of materializing families up to k = n: same outcomes, and the
  // schedule stays affordable at the n = 2^20 frontier.
  config.prefix_cap = n;
  config.kind = kind;
  config.seed = seed;
  config.c = family_c;
  return std::make_shared<WakeupWithSProtocol>(s, comb::make_doubling_schedule(config));
}

}  // namespace wakeup::proto
