#include "protocols/wakeup_with_s.hpp"

namespace wakeup::proto {
namespace {

class WakeupWithSRuntime final : public StationRuntime {
 public:
  WakeupWithSRuntime(StationId u, Slot wake, Slot s, std::uint32_t n,
                     comb::DoublingSchedulePtr schedule)
      : u_(u), participates_satf_(wake == s), s_(s), n_(n), schedule_(std::move(schedule)) {}

  [[nodiscard]] bool transmits(Slot t) override {
    const Slot d = t - s_;
    if (d < 0) return false;
    if (d % 2 == 0) {
      // Round-robin half: every awake station takes its TDM turn.
      const Slot v = d / 2;
      return static_cast<std::uint32_t>(v % static_cast<Slot>(n_)) == u_;
    }
    // select_among_the_first half: only stations woken exactly at s.
    if (!participates_satf_) return false;
    const Slot v = (d - 1) / 2;
    return schedule_->transmits(u_, static_cast<std::uint64_t>(v));
  }

 private:
  StationId u_;
  bool participates_satf_;
  Slot s_;
  std::uint32_t n_;
  comb::DoublingSchedulePtr schedule_;
};

}  // namespace

std::unique_ptr<StationRuntime> WakeupWithSProtocol::make_runtime(StationId u, Slot wake) const {
  return std::make_unique<WakeupWithSRuntime>(u, wake, s_, schedule_->config().n, schedule_);
}

ProtocolPtr make_wakeup_with_s(std::uint32_t n, Slot s, comb::FamilyKind kind,
                               std::uint64_t seed, double family_c) {
  comb::DoublingSchedule::Config config;
  config.n = n;
  config.k_max = n;  // s is known but k is not: concatenate families up to n
  config.kind = kind;
  config.seed = seed;
  config.c = family_c;
  return std::make_shared<WakeupWithSProtocol>(s, comb::make_doubling_schedule(config));
}

}  // namespace wakeup::proto
