#pragma once

/// \file wait_and_go.hpp
/// `wait_and_go` (paper §4, Scenario B component).
///
/// The schedule is the cyclic concatenation F = <F_1, ..., F_{⌈log k⌉}> of
/// (n,2^i)-selective families, of period z.  A station woken at slot j
/// remains silent until the smallest σ >= j such that F_{σ mod z} is the
/// first set of some family, then transmits according to F_{t mod z} for
/// every t >= σ.  Freezing newcomers until a family boundary guarantees the
/// participant set of each family never changes during its execution, so
/// the family bracketing |X_i| isolates a station.

#include "combinatorics/doubling_schedule.hpp"
#include "protocols/protocol.hpp"

namespace wakeup::proto {

class WaitAndGoProtocol final : public Protocol, public ObliviousSchedule {
 public:
  explicit WaitAndGoProtocol(comb::DoublingSchedulePtr schedule)
      : schedule_(std::move(schedule)) {}

  [[nodiscard]] std::string name() const override { return "wait_and_go"; }
  [[nodiscard]] Requirements requirements() const override {
    Requirements r;
    r.needs_k = true;  // the schedule depth depends on k
    return r;
  }
  [[nodiscard]] std::unique_ptr<StationRuntime> make_runtime(StationId u,
                                                             Slot wake) const override;
  [[nodiscard]] const ObliviousSchedule* oblivious_schedule() const override { return this; }
  void schedule_block(StationId u, Slot wake, Slot from, std::uint64_t* out_words,
                      std::size_t n_words) const override;
  /// Emission depends on the wake only through the go slot (the next
  /// family boundary): silence below it, the cyclic concatenation above.
  [[nodiscard]] std::uint64_t wake_key(Slot wake) const override {
    return schedule_->next_family_start(static_cast<std::uint64_t>(wake < 0 ? 0 : wake));
  }
  [[nodiscard]] std::uint64_t period() const override { return schedule_->period(); }
  [[nodiscard]] Slot steady_from(Slot wake) const override {
    return static_cast<Slot>(
        schedule_->next_family_start(static_cast<std::uint64_t>(wake < 0 ? 0 : wake)));
  }

  [[nodiscard]] const comb::DoublingSchedule& schedule() const noexcept { return *schedule_; }

 private:
  comb::DoublingSchedulePtr schedule_;
};

/// Builds the ⌈log k⌉-family schedule and wraps it.
[[nodiscard]] ProtocolPtr make_wait_and_go(std::uint32_t n, std::uint32_t k,
                                           comb::FamilyKind kind, std::uint64_t seed,
                                           double family_c = comb::kDefaultRandomFamilyC);

}  // namespace wakeup::proto
