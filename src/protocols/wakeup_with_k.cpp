#include "protocols/wakeup_with_k.hpp"

#include "protocols/interleaved.hpp"
#include "protocols/round_robin.hpp"
#include "protocols/wait_and_go.hpp"

namespace wakeup::proto {

ProtocolPtr make_wakeup_with_k(std::uint32_t n, std::uint32_t k, comb::FamilyKind kind,
                               std::uint64_t seed, double family_c) {
  auto rr = std::make_shared<RoundRobinProtocol>(n);
  auto wag = make_wait_and_go(n, k, kind, seed, family_c);
  return std::make_shared<InterleavedProtocol>(std::move(rr), std::move(wag), "wakeup_with_k");
}

}  // namespace wakeup::proto
