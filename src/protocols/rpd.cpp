#include "protocols/rpd.hpp"

#include "util/math.hpp"
#include "util/rng.hpp"

namespace wakeup::proto {
namespace {

class RpdRuntime final : public StationRuntime {
 public:
  RpdRuntime(unsigned ell, util::Rng rng) : ell_(ell), rng_(rng) {}

  [[nodiscard]] bool transmits(Slot t) override {
    const auto phase = static_cast<unsigned>(static_cast<std::uint64_t>(t) %
                                             static_cast<std::uint64_t>(ell_));
    return rng_.bernoulli_pow2(1 + phase);
  }

 private:
  unsigned ell_;
  util::Rng rng_;
};

}  // namespace

std::unique_ptr<StationRuntime> RpdProtocol::make_runtime(StationId u, Slot wake) const {
  // Private coin stream per (station, wake): independent across stations,
  // reproducible across runs.
  util::Rng rng(util::hash_words({seed_, 0x525044ULL /* "RPD" */, u,
                                  static_cast<std::uint64_t>(wake)}));
  return std::make_unique<RpdRuntime>(ell_, rng);
}

ProtocolPtr RpdProtocol::for_n(std::uint32_t n, std::uint64_t seed) {
  return std::make_shared<RpdProtocol>(2 * util::log2n_clamped(n), seed, "rpd_n");
}

ProtocolPtr RpdProtocol::for_k(std::uint32_t k, std::uint64_t seed) {
  return std::make_shared<RpdProtocol>(2 * util::log2n_clamped(k), seed, "rpd_k");
}

}  // namespace wakeup::proto
