#pragma once

/// \file round_robin.hpp
/// Round-robin (time-division multiplexing): station u transmits exactly
/// when t ≡ u (mod n).
///
/// Completes wake-up within n - k + 1 rounds — at most n - k slots can be
/// wasted on sleeping stations' turns (§3).  Asymptotically optimal for
/// k > n/c by Corollary 2.1; both Scenario A and B algorithms interleave it
/// to cover that regime.

#include "protocols/protocol.hpp"

namespace wakeup::proto {

class RoundRobinProtocol final : public Protocol, public ObliviousSchedule {
 public:
  explicit RoundRobinProtocol(std::uint32_t n) : n_(n == 0 ? 1 : n) {}

  [[nodiscard]] std::string name() const override { return "round_robin"; }
  [[nodiscard]] Requirements requirements() const override { return {}; }
  [[nodiscard]] std::unique_ptr<StationRuntime> make_runtime(StationId u,
                                                             Slot wake) const override;
  [[nodiscard]] const ObliviousSchedule* oblivious_schedule() const override { return this; }
  void schedule_block(StationId u, Slot wake, Slot from, std::uint64_t* out_words,
                      std::size_t n_words) const override;
  [[nodiscard]] bool words_are_cheap() const override { return true; }
  /// TDM is a pure function of the global clock: one wake class, period n.
  [[nodiscard]] std::uint64_t wake_key(Slot wake) const override {
    (void)wake;
    return 0;
  }
  [[nodiscard]] std::uint64_t period() const override { return n_; }
  [[nodiscard]] Slot steady_from(Slot wake) const override {
    (void)wake;
    return 0;
  }

  [[nodiscard]] std::uint32_t n() const noexcept { return n_; }

 private:
  std::uint32_t n_;
};

}  // namespace wakeup::proto
