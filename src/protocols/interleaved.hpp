#pragma once

/// \file interleaved.hpp
/// Parity interleaving of two protocols on one channel (the "very easy
/// operation in a scenario with global clock" of §3).
///
/// Even global slots t = 2v run component A at virtual slot v; odd slots
/// t = 2v + 1 run component B at virtual slot v.  Component runtimes are
/// created with the first virtual slot they will be queried at, preserving
/// the StationRuntime contract on the virtual axis.
///
/// Note: components whose behaviour depends on *comparing* station wake
/// times (e.g. `select_among_the_first`'s wake == s rule) must not be
/// interleaved through this combinator, because two distinct real wake
/// times can collapse onto one virtual slot; `wakeup_with_s` is therefore
/// implemented monolithically.

#include "protocols/protocol.hpp"

namespace wakeup::proto {

class InterleavedProtocol final : public Protocol {
 public:
  InterleavedProtocol(ProtocolPtr even, ProtocolPtr odd, std::string label = {})
      : even_(std::move(even)), odd_(std::move(odd)), label_(std::move(label)) {}

  [[nodiscard]] std::string name() const override {
    return label_.empty() ? "interleave(" + even_->name() + "," + odd_->name() + ")" : label_;
  }
  [[nodiscard]] Requirements requirements() const override;
  [[nodiscard]] std::unique_ptr<StationRuntime> make_runtime(StationId u,
                                                             Slot wake) const override;

  [[nodiscard]] const Protocol& even() const noexcept { return *even_; }
  [[nodiscard]] const Protocol& odd() const noexcept { return *odd_; }

 private:
  ProtocolPtr even_;
  ProtocolPtr odd_;
  std::string label_;
};

}  // namespace wakeup::proto
