#pragma once

/// \file interleaved.hpp
/// Parity interleaving of two protocols on one channel (the "very easy
/// operation in a scenario with global clock" of §3).
///
/// Even global slots t = 2v run component A at virtual slot v; odd slots
/// t = 2v + 1 run component B at virtual slot v.  Component runtimes are
/// created with the first virtual slot they will be queried at, preserving
/// the StationRuntime contract on the virtual axis.
///
/// Note: components whose behaviour depends on *comparing* station wake
/// times (e.g. `select_among_the_first`'s wake == s rule) must not be
/// interleaved through this combinator, because two distinct real wake
/// times can collapse onto one virtual slot; `wakeup_with_s` is therefore
/// implemented monolithically.

#include "protocols/protocol.hpp"

namespace wakeup::proto {

class InterleavedProtocol final : public Protocol, public ObliviousSchedule {
 public:
  InterleavedProtocol(ProtocolPtr even, ProtocolPtr odd, std::string label = {})
      : even_(std::move(even)),
        odd_(std::move(odd)),
        even_sched_(even_->oblivious_schedule()),
        odd_sched_(odd_->oblivious_schedule()),
        label_(std::move(label)) {}

  [[nodiscard]] std::string name() const override {
    return label_.empty() ? "interleave(" + even_->name() + "," + odd_->name() + ")" : label_;
  }
  [[nodiscard]] Requirements requirements() const override;
  [[nodiscard]] std::unique_ptr<StationRuntime> make_runtime(StationId u,
                                                             Slot wake) const override;

  /// Oblivious exactly when both components are: the interleaving of two
  /// pure schedules is itself a pure schedule on the global slot axis.
  [[nodiscard]] const ObliviousSchedule* oblivious_schedule() const override {
    return (even_sched_ != nullptr && odd_sched_ != nullptr) ? this : nullptr;
  }
  void schedule_block(StationId u, Slot wake, Slot from, std::uint64_t* out_words,
                      std::size_t n_words) const override;
  [[nodiscard]] bool words_are_cheap() const override {
    return even_sched_ != nullptr && odd_sched_ != nullptr && even_sched_->words_are_cheap() &&
           odd_sched_->words_are_cheap();
  }
  /// Emission is a pure interleave of the components' emissions, so the
  /// wake class is the (hashed) pair of component classes at the virtual
  /// wakes, the period the doubled lcm of the component periods, and the
  /// steady state starts once both components are steady on their parity.
  [[nodiscard]] std::uint64_t wake_key(Slot wake) const override;
  [[nodiscard]] std::uint64_t period() const override;
  [[nodiscard]] Slot steady_from(Slot wake) const override;

  [[nodiscard]] const Protocol& even() const noexcept { return *even_; }
  [[nodiscard]] const Protocol& odd() const noexcept { return *odd_; }

 private:
  ProtocolPtr even_;
  ProtocolPtr odd_;
  const ObliviousSchedule* even_sched_;
  const ObliviousSchedule* odd_sched_;
  std::string label_;
};

}  // namespace wakeup::proto
