#pragma once

/// \file multichannel.hpp
/// Multi-channel wake-up protocols (extension; see mac/multichannel.hpp).
///
/// Three strategies over C channels, plus an adapter embedding any
/// single-channel protocol on channel 0 as the baseline:
///
///  * striped round-robin — station u owns channel u mod C and slot
///    (u / C) of a ceil(n/C)-slot cycle: worst case ceil(n/C) - ... the
///    C-fold TDM speedup.
///  * group wait_and_go — stations hash into C groups; each group runs the
///    Scenario B doubling schedule privately on its channel.  Expected
///    contention per channel drops to ~k/C.
///  * random-channel RPD — each slot pick a uniform channel and run the
///    RPD coin for it; C solo opportunities per slot.

#include "combinatorics/doubling_schedule.hpp"
#include "mac/multichannel.hpp"
#include "protocols/protocol.hpp"

namespace wakeup::proto {

/// Per-station runtime in the C-channel model.  Same calling contract as
/// StationRuntime, but each slot yields a (transmit, channel) action.
class McStationRuntime {
 public:
  virtual ~McStationRuntime() = default;
  [[nodiscard]] virtual mac::ChannelAction act(Slot t) = 0;
  /// Outcome observed on the channel this station acted on at slot t.
  virtual void feedback(Slot t, ChannelFeedback fb) {
    (void)t;
    (void)fb;
  }
};

class McProtocol {
 public:
  virtual ~McProtocol() = default;
  [[nodiscard]] virtual std::string name() const = 0;
  [[nodiscard]] virtual std::uint32_t channels() const = 0;
  [[nodiscard]] virtual std::unique_ptr<McStationRuntime> make_runtime(StationId u,
                                                                       Slot wake) const = 0;
  /// Non-null when the protocol is a single-channel protocol embedded on
  /// channel 0 (the adapter below): the multichannel dispatch then routes
  /// the run through the single-channel engine stack, so oblivious
  /// baselines get the word-parallel fast path too.
  [[nodiscard]] virtual const Protocol* single_channel() const { return nullptr; }
  /// Non-null iff the protocol is oblivious: deterministic, feedback-free,
  /// and every station pinned to one lane (`ObliviousSchedule::
  /// channel_lane`), with `schedule_channels() == channels()`.  The
  /// returned schedule must agree with `make_runtime` action for action;
  /// the C-channel batch engine (sim/mc_batch_engine.hpp) then resolves
  /// runs 64 slots per lane at a time instead of one `resolve_multi_slot`
  /// per slot.
  [[nodiscard]] virtual const ObliviousSchedule* oblivious_schedule() const { return nullptr; }
  /// True for coin-flipping protocols (random-channel RPD): the sweep
  /// harness rebuilds them per trial from a per-trial stream instead of
  /// hoisting one instance per cell (same seed contract as
  /// proto::Requirements::randomized on the single-channel side).
  [[nodiscard]] virtual bool randomized() const { return false; }
};

using McProtocolPtr = std::shared_ptr<const McProtocol>;

/// Embeds a single-channel protocol on channel 0 of a C-channel network
/// (the extra channels stay idle — the baseline for speedup measurements).
[[nodiscard]] McProtocolPtr make_single_channel_adapter(ProtocolPtr inner,
                                                        std::uint32_t channels);

/// Striped round-robin: station u transmits on channel u % C in cycle slot
/// u / C; completes within ceil(n/C) slots of the first wake.
[[nodiscard]] McProtocolPtr make_striped_round_robin(std::uint32_t n, std::uint32_t channels);

/// Hash-grouped wait_and_go: station u joins group h(u) mod C and runs the
/// (n, k)-doubling schedule of its group on channel h(u).
[[nodiscard]] McProtocolPtr make_group_wait_and_go(std::uint32_t n, std::uint32_t k,
                                                   std::uint32_t channels,
                                                   comb::FamilyKind kind, std::uint64_t seed);

/// Random-channel RPD: per slot, choose a uniform channel and transmit with
/// the RPD probability 2^{-1-(t mod ell)}.
[[nodiscard]] McProtocolPtr make_random_channel_rpd(std::uint32_t n, std::uint32_t channels,
                                                    std::uint64_t seed);

}  // namespace wakeup::proto
