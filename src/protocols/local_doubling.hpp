#pragma once

/// \file local_doubling.hpp
/// Local-clock doubling baseline.
///
/// Each station runs the concatenated doubling selective-family schedule
/// *from its own wake time* — no global alignment whatsoever.  This is the
/// canonical deterministic protocol for the locally-synchronized model the
/// paper compares against (Chlebus–Gąsieniec–Kowalski–Radzik [9],
/// O(k log² n)); see DESIGN.md for the inspired-by caveat.  With a
/// simultaneous wake pattern it degenerates to the synchronized
/// Komlós–Greenberg setting, which is how the T2/T5 benches use it too.

#include "combinatorics/doubling_schedule.hpp"
#include "protocols/protocol.hpp"

namespace wakeup::proto {

class LocalDoublingProtocol final : public Protocol {
 public:
  explicit LocalDoublingProtocol(comb::DoublingSchedulePtr schedule)
      : schedule_(std::move(schedule)) {}

  [[nodiscard]] std::string name() const override { return "local_doubling"; }
  [[nodiscard]] Requirements requirements() const override {
    Requirements r;
    r.needs_global_clock = false;  // only local ages are used
    return r;
  }
  [[nodiscard]] std::unique_ptr<StationRuntime> make_runtime(StationId u,
                                                             Slot wake) const override;

  [[nodiscard]] const comb::DoublingSchedule& schedule() const noexcept { return *schedule_; }

 private:
  comb::DoublingSchedulePtr schedule_;
};

[[nodiscard]] ProtocolPtr make_local_doubling(std::uint32_t n, std::uint32_t k_max,
                                              comb::FamilyKind kind, std::uint64_t seed,
                                              double family_c = comb::kDefaultRandomFamilyC);

}  // namespace wakeup::proto
