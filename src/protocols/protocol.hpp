#pragma once

/// \file protocol.hpp
/// The protocol abstraction: a wake-up algorithm is a rule assigning every
/// station a transmission schedule as a function of its ID and wake time.
///
/// A `Protocol` is an immutable description shared by all stations (and all
/// simulation trials); `make_runtime` instantiates the per-station state.
/// Deterministic oblivious protocols (everything in the paper) ignore
/// feedback; the hook exists for the randomized/adaptive extensions.

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>

#include "mac/types.hpp"

namespace wakeup::proto {

using mac::ChannelFeedback;
using mac::Slot;
using mac::StationId;

/// What a protocol needs from the environment — used by the Scenario
/// factory (core) and asserted by the simulator setup in benches.
struct Requirements {
  bool needs_global_clock = true;   ///< all paper protocols use the global clock
  bool needs_start_time = false;    ///< Scenario A: s known to every station
  bool needs_k = false;             ///< Scenario B: upper bound k known
  bool needs_collision_detection = false;  ///< beyond the paper's model
  bool randomized = false;          ///< uses coin flips
};

/// Per-station protocol execution state.
///
/// Contract: the owner calls `transmits(t)` exactly once for every slot
/// t >= the wake time passed to `make_runtime`, in strictly increasing
/// order, and (if it delivers feedback at all) calls `feedback(t, ...)`
/// after `transmits(t)` and before `transmits(t + 1)`.
class StationRuntime {
 public:
  virtual ~StationRuntime() = default;

  /// Does this station transmit in slot t?
  [[nodiscard]] virtual bool transmits(Slot t) = 0;

  /// What the station heard on the channel in slot t.
  virtual void feedback(Slot t, ChannelFeedback fb) {
    (void)t;
    (void)fb;
  }
};

/// Per-station execution state under *dynamic* traffic, where a station
/// serves a stream of packets instead of a single wake-up: each head-of-line
/// packet contends until delivered, then the next packet (if any) starts a
/// fresh contention.  Unlike StationRuntime, a DynamicStation lives for the
/// whole trial, so adaptive protocols can carry congestion estimates and
/// fairness state across packets.
///
/// Contract: the owner calls `packet_start(s)` whenever a new head-of-line
/// packet begins contending at slot s (including the first), then
/// `transmits(t)` exactly once for every slot t >= s while the station is
/// backlogged, in strictly increasing order, with `feedback(t, ...)` after
/// `transmits(t)`.  While the queue is empty no calls are made; the next
/// `packet_start` resumes at a strictly later slot.
class DynamicStation {
 public:
  virtual ~DynamicStation() = default;

  /// A new head-of-line packet starts contending at slot `start`.
  virtual void packet_start(Slot start) = 0;

  /// Does this station transmit in slot t?
  [[nodiscard]] virtual bool transmits(Slot t) = 0;

  /// What the station heard in slot t; `delivered` is true exactly when the
  /// slot's success was this station's own head-of-line packet (in which
  /// case fb == kSuccess and the owner follows up with `packet_start` if
  /// the queue is still non-empty).
  virtual void feedback(Slot t, ChannelFeedback fb, bool delivered) {
    (void)t;
    (void)fb;
    (void)delivered;
  }
};

/// Capability interface of deterministic, feedback-free ("oblivious")
/// protocols: the whole transmission schedule of a station is a pure
/// function of (station, wake slot), so it can be emitted as packed 64-slot
/// bit blocks and resolved word-parallel by the batch engines behind
/// `sim::Run` instead of one virtual call per slot per station.
///
/// The capability is channel-aware: a schedule spans `schedule_channels()`
/// channel lanes and pins every station to the single lane
/// `channel_lane(u, wake)` for its whole run.  Single-channel protocols are
/// the C = 1 specialization (the defaults — one lane, everyone on lane 0),
/// so the six paper protocols implement exactly the same interface as the
/// multichannel strategies and both feed the same word-parallel engines.
class ObliviousSchedule {
 public:
  virtual ~ObliviousSchedule() = default;

  // -- Channel lanes ----------------------------------------------------

  /// Number of channel lanes the schedule spans.  1 (default) is the
  /// paper's single multiple access channel; C > 1 is the multi-channel
  /// extension (mac/multichannel.hpp), where each slot resolves per lane.
  [[nodiscard]] virtual std::uint32_t schedule_channels() const { return 1; }

  /// The fixed channel lane station `u` acts on (transmits and listens)
  /// for its entire run.  Must be < schedule_channels(), constant over
  /// slots, and — like schedule_block — may depend on the wake only
  /// through wake_key.  Oblivious *multichannel* protocols whose stations
  /// hop lanes mid-run do not fit this capability and stay on the slot
  /// interpreter.
  [[nodiscard]] virtual std::uint32_t channel_lane(StationId u, Slot wake) const {
    (void)u;
    (void)wake;
    return 0;
  }

  /// Writes `n_words` consecutive 64-slot blocks of station `u`'s schedule
  /// starting at slot `from`: bit j of out_words[w] covers slot
  /// from + 64*w + j and must equal what a fresh `make_runtime(u, wake)`
  /// runtime would answer from `transmits` at that slot (for multichannel
  /// protocols: the `transmit` flag of `act`, which always targets
  /// `channel_lane(u, wake)`), for every covered slot >= wake.  Bits
  /// covering slots earlier than `wake` are unspecified — callers must
  /// mask them out (the StationRuntime contract never queries those slots
  /// either).
  virtual void schedule_block(StationId u, Slot wake, Slot from, std::uint64_t* out_words,
                              std::size_t n_words) const = 0;

  /// Cost class of schedule_block, used by the auto dispatch to size its
  /// interpreted warm-up window.  True means a word costs a handful of bit
  /// operations (round_robin's strided bits) so batching is always worth
  /// it; false (default) means words walk per-slot tables or hashes, and
  /// very short runs are better interpreted.
  [[nodiscard]] virtual bool words_are_cheap() const { return false; }

  // -- Trial-batching hints (consumed by sim::ScheduleCache) ------------
  //
  // Deterministic protocols' schedules are trial-invariant: across the
  // Monte-Carlo trials of one sweep cell only the wake pattern changes.
  // The three hints below let the cache share memoized schedule words
  // across trials (and across stations woken at equivalent times) while
  // staying bit-exact; every override must satisfy the stated contracts,
  // which tests/test_schedule_cache.cpp checks per protocol.

  /// Wake-equivalence key: whenever wake_key(w1) == wake_key(w2), calls
  /// schedule_block(u, w1, from, ...) and schedule_block(u, w2, from, ...)
  /// must emit identical words for every station u, start slot and word
  /// count — including the bits covering slots before the wake, i.e. the
  /// emission may depend on the wake only through this key.  The default
  /// (the wake itself) is always sound; overriding it with a coarser class
  /// (e.g. "participant or not", "next family boundary") lets one cached
  /// entry serve many wake times.
  [[nodiscard]] virtual std::uint64_t wake_key(Slot wake) const {
    return static_cast<std::uint64_t>(wake);
  }

  /// Steady-state slot period P: if > 0 then for every station u and wake
  /// w the schedule bit at slot t equals the bit at slot t + P for all
  /// t >= steady_from(w).  0 (default) means aperiodic/unknown.  Enables
  /// memoizing one period of words per station instead of a full horizon.
  [[nodiscard]] virtual std::uint64_t period() const { return 0; }

  /// First slot from which the period() guarantee holds for a station
  /// woken at `wake`.  Must be invariant across wakes sharing a wake_key.
  /// Only meaningful when period() > 0.
  [[nodiscard]] virtual Slot steady_from(Slot wake) const { return wake; }
};

class Protocol {
 public:
  virtual ~Protocol() = default;

  /// Stable identifier used in reports and the registry.
  [[nodiscard]] virtual std::string name() const = 0;

  [[nodiscard]] virtual Requirements requirements() const { return {}; }

  /// Creates the execution state for station `u` woken at slot `wake`.
  [[nodiscard]] virtual std::unique_ptr<StationRuntime> make_runtime(StationId u,
                                                                     Slot wake) const = 0;

  /// Non-null iff the protocol is oblivious (deterministic and
  /// feedback-free), in which case the returned schedule must agree with
  /// `make_runtime` bit for bit.  Adaptive/randomized protocols keep the
  /// default and run through the slot-by-slot interpreter.
  [[nodiscard]] virtual const ObliviousSchedule* oblivious_schedule() const { return nullptr; }

  /// Creates cross-packet execution state for station `u` under dynamic
  /// traffic.  The default (nullptr) tells the simulator to restart a fresh
  /// `make_runtime(u, start)` per packet — exactly right for oblivious
  /// protocols and memoryless randomized ones.  Adaptive protocols override
  /// this to carry state (contention windows, fairness shares) across the
  /// packets of one trial.
  [[nodiscard]] virtual std::unique_ptr<DynamicStation> make_dynamic_station(StationId u) const {
    (void)u;
    return nullptr;
  }
};

/// Protocols are immutable and shared across stations and trials.
using ProtocolPtr = std::shared_ptr<const Protocol>;

}  // namespace wakeup::proto
