#pragma once

/// \file protocol.hpp
/// The protocol abstraction: a wake-up algorithm is a rule assigning every
/// station a transmission schedule as a function of its ID and wake time.
///
/// A `Protocol` is an immutable description shared by all stations (and all
/// simulation trials); `make_runtime` instantiates the per-station state.
/// Deterministic oblivious protocols (everything in the paper) ignore
/// feedback; the hook exists for the randomized/adaptive extensions.

#include <cstdint>
#include <memory>
#include <string>

#include "mac/types.hpp"

namespace wakeup::proto {

using mac::ChannelFeedback;
using mac::Slot;
using mac::StationId;

/// What a protocol needs from the environment — used by the Scenario
/// factory (core) and asserted by the simulator setup in benches.
struct Requirements {
  bool needs_global_clock = true;   ///< all paper protocols use the global clock
  bool needs_start_time = false;    ///< Scenario A: s known to every station
  bool needs_k = false;             ///< Scenario B: upper bound k known
  bool needs_collision_detection = false;  ///< beyond the paper's model
  bool randomized = false;          ///< uses coin flips
};

/// Per-station protocol execution state.
///
/// Contract: the owner calls `transmits(t)` exactly once for every slot
/// t >= the wake time passed to `make_runtime`, in strictly increasing
/// order, and (if it delivers feedback at all) calls `feedback(t, ...)`
/// after `transmits(t)` and before `transmits(t + 1)`.
class StationRuntime {
 public:
  virtual ~StationRuntime() = default;

  /// Does this station transmit in slot t?
  [[nodiscard]] virtual bool transmits(Slot t) = 0;

  /// What the station heard on the channel in slot t.
  virtual void feedback(Slot t, ChannelFeedback fb) {
    (void)t;
    (void)fb;
  }
};

class Protocol {
 public:
  virtual ~Protocol() = default;

  /// Stable identifier used in reports and the registry.
  [[nodiscard]] virtual std::string name() const = 0;

  [[nodiscard]] virtual Requirements requirements() const { return {}; }

  /// Creates the execution state for station `u` woken at slot `wake`.
  [[nodiscard]] virtual std::unique_ptr<StationRuntime> make_runtime(StationId u,
                                                                     Slot wake) const = 0;
};

/// Protocols are immutable and shared across stations and trials.
using ProtocolPtr = std::shared_ptr<const Protocol>;

}  // namespace wakeup::proto
