#include "protocols/wait_and_go.hpp"

namespace wakeup::proto {
namespace {

class WaitAndGoRuntime final : public StationRuntime {
 public:
  WaitAndGoRuntime(StationId u, Slot wake, comb::DoublingSchedulePtr schedule)
      : u_(u), schedule_(std::move(schedule)) {
    const auto j = static_cast<std::uint64_t>(wake < 0 ? 0 : wake);
    go_ = schedule_->next_family_start(j);
  }

  [[nodiscard]] bool transmits(Slot t) override {
    const auto ut = static_cast<std::uint64_t>(t);
    if (t < 0 || ut < go_) return false;  // still waiting for a family boundary
    return schedule_->transmits(u_, ut);
  }

 private:
  StationId u_;
  comb::DoublingSchedulePtr schedule_;
  std::uint64_t go_ = 0;
};

}  // namespace

std::unique_ptr<StationRuntime> WaitAndGoProtocol::make_runtime(StationId u, Slot wake) const {
  return std::make_unique<WaitAndGoRuntime>(u, wake, schedule_);
}

void WaitAndGoProtocol::schedule_block(StationId u, Slot wake, Slot from,
                                       std::uint64_t* out_words, std::size_t n_words) const {
  const auto j0 = static_cast<std::uint64_t>(wake < 0 ? 0 : wake);
  const std::uint64_t go = schedule_->next_family_start(j0);
  for (std::size_t w = 0; w < n_words; ++w) {
    const Slot t0 = from + static_cast<Slot>(64 * w);
    if (t0 < 0) {  // negative slots never transmit; per-bit boundary path
      std::uint64_t word = 0;
      for (unsigned j = 0; j < 64; ++j) {
        const Slot t = t0 + static_cast<Slot>(j);
        if (t < 0 || static_cast<std::uint64_t>(t) < go) continue;
        if (schedule_->transmits(u, static_cast<std::uint64_t>(t))) {
          word |= std::uint64_t{1} << j;
        }
      }
      out_words[w] = word;
      continue;
    }
    const auto ut0 = static_cast<std::uint64_t>(t0);
    if (ut0 + 64 <= go) {  // still waiting for a family boundary
      out_words[w] = 0;
      continue;
    }
    std::uint64_t word = schedule_->schedule_word(u, ut0);
    if (ut0 < go) word &= ~std::uint64_t{0} << (go - ut0);
    out_words[w] = word;
  }
}

ProtocolPtr make_wait_and_go(std::uint32_t n, std::uint32_t k, comb::FamilyKind kind,
                             std::uint64_t seed, double family_c) {
  comb::DoublingSchedule::Config config;
  config.n = n;
  config.k_max = k < 2 ? 2 : k;
  config.kind = kind;
  config.seed = seed;
  config.c = family_c;
  return std::make_shared<WaitAndGoProtocol>(comb::make_doubling_schedule(config));
}

}  // namespace wakeup::proto
