#include "protocols/wait_and_go.hpp"

namespace wakeup::proto {
namespace {

class WaitAndGoRuntime final : public StationRuntime {
 public:
  WaitAndGoRuntime(StationId u, Slot wake, comb::DoublingSchedulePtr schedule)
      : u_(u), schedule_(std::move(schedule)) {
    const auto j = static_cast<std::uint64_t>(wake < 0 ? 0 : wake);
    go_ = schedule_->next_family_start(j);
  }

  [[nodiscard]] bool transmits(Slot t) override {
    const auto ut = static_cast<std::uint64_t>(t);
    if (t < 0 || ut < go_) return false;  // still waiting for a family boundary
    return schedule_->transmits(u_, ut);
  }

 private:
  StationId u_;
  comb::DoublingSchedulePtr schedule_;
  std::uint64_t go_ = 0;
};

}  // namespace

std::unique_ptr<StationRuntime> WaitAndGoProtocol::make_runtime(StationId u, Slot wake) const {
  return std::make_unique<WaitAndGoRuntime>(u, wake, schedule_);
}

ProtocolPtr make_wait_and_go(std::uint32_t n, std::uint32_t k, comb::FamilyKind kind,
                             std::uint64_t seed, double family_c) {
  comb::DoublingSchedule::Config config;
  config.n = n;
  config.k_max = k < 2 ? 2 : k;
  config.kind = kind;
  config.seed = seed;
  config.c = family_c;
  return std::make_shared<WaitAndGoProtocol>(comb::make_doubling_schedule(config));
}

}  // namespace wakeup::proto
