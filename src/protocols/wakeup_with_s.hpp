#pragma once

/// \file wakeup_with_s.hpp
/// `wakeup_with_s` (paper §3): the Scenario A algorithm — round-robin
/// interleaved with `select_among_the_first`.
///
/// Slots are split by the parity of t - s (possible because every station
/// knows s): even offsets run round-robin (every awake station takes its
/// TDM turn), odd offsets run `select_among_the_first` (only stations woken
/// exactly at s).  The interleaving costs a factor of 2 and gives
/// min{n-k+1, O(k log(n/k))} = Θ(k log(n/k) + 1), which is optimal.
///
/// Implemented monolithically rather than via the generic `Interleaved`
/// combinator: the SATF participation rule compares *real* wake times with
/// s, which the combinator's virtual-time mapping cannot express faithfully.

#include "combinatorics/doubling_schedule.hpp"
#include "protocols/protocol.hpp"

namespace wakeup::proto {

class WakeupWithSProtocol final : public Protocol, public ObliviousSchedule {
 public:
  WakeupWithSProtocol(Slot s, comb::DoublingSchedulePtr schedule)
      : s_(s), schedule_(std::move(schedule)) {}

  [[nodiscard]] std::string name() const override { return "wakeup_with_s"; }
  [[nodiscard]] Requirements requirements() const override {
    Requirements r;
    r.needs_start_time = true;
    return r;
  }
  [[nodiscard]] std::unique_ptr<StationRuntime> make_runtime(StationId u,
                                                             Slot wake) const override;
  [[nodiscard]] const ObliviousSchedule* oblivious_schedule() const override { return this; }
  void schedule_block(StationId u, Slot wake, Slot from, std::uint64_t* out_words,
                      std::size_t n_words) const override;
  /// Emission depends on the wake only through SATF participation.  Past
  /// s, even offsets repeat round-robin (global period 2n) and odd offsets
  /// the doubling concatenation (global period 2z): combined 2·lcm(n, z).
  [[nodiscard]] std::uint64_t wake_key(Slot wake) const override { return wake == s_ ? 1 : 0; }
  [[nodiscard]] std::uint64_t period() const override;
  [[nodiscard]] Slot steady_from(Slot wake) const override {
    (void)wake;
    return s_;
  }

  [[nodiscard]] Slot s() const noexcept { return s_; }
  [[nodiscard]] const comb::DoublingSchedule& schedule() const noexcept { return *schedule_; }

 private:
  Slot s_;
  comb::DoublingSchedulePtr schedule_;
};

/// Convenience factory: builds the doubling schedule for universe n,
/// truncated to a prefix of n sets — the round-robin half succeeds within
/// 2n slots of the first wake, so SATF sets past index n are unreachable
/// before success and materializing families up to k = n buys nothing.
[[nodiscard]] ProtocolPtr make_wakeup_with_s(std::uint32_t n, Slot s,
                                             comb::FamilyKind kind, std::uint64_t seed,
                                             double family_c = comb::kDefaultRandomFamilyC);

}  // namespace wakeup::proto
