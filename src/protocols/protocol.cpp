#include "protocols/protocol.hpp"

namespace wakeup::proto {

// Vtable anchors only; the interfaces are header-defined.

}  // namespace wakeup::proto
