#include "protocols/wakeup_matrix.hpp"

namespace wakeup::proto {
namespace {

/// Tracks the row scan incrementally (transmits() is called with strictly
/// increasing t, so no per-slot row search is needed).  Equivalence with
/// the declarative MatrixParams::row_at is asserted in tests.
class WakeupMatrixRuntime final : public StationRuntime {
 public:
  WakeupMatrixRuntime(StationId u, Slot wake, const comb::LazyTransmissionMatrix& matrix)
      : u_(u), matrix_(matrix) {
    const auto& p = matrix_.params();
    operative_ = p.mu(wake);
    row_ = 1;
    row_end_ = operative_ + static_cast<Slot>(p.m(1));
  }

  [[nodiscard]] bool transmits(Slot t) override {
    const auto& p = matrix_.params();
    if (t < operative_) return false;  // waiting for the window boundary
    while (t >= row_end_) {
      if (row_ < p.rows) {
        ++row_;
      } else {
        row_ = 1;  // wrap: restart the scan (§5.1 guarantee fires earlier)
      }
      row_end_ += static_cast<Slot>(p.m(row_));
    }
    return matrix_.contains(row_, static_cast<std::uint64_t>(t), u_);
  }

 private:
  StationId u_;
  const comb::LazyTransmissionMatrix& matrix_;
  Slot operative_ = 0;
  unsigned row_ = 1;
  Slot row_end_ = 0;
};

}  // namespace

std::unique_ptr<StationRuntime> WakeupMatrixProtocol::make_runtime(StationId u, Slot wake) const {
  return std::make_unique<WakeupMatrixRuntime>(u, wake, matrix_);
}

}  // namespace wakeup::proto
