#include "protocols/wakeup_matrix.hpp"

namespace wakeup::proto {
namespace {

/// Tracks the row scan incrementally (transmits() is called with strictly
/// increasing t, so no per-slot row search is needed).  Equivalence with
/// the declarative MatrixParams::row_at is asserted in tests.
class WakeupMatrixRuntime final : public StationRuntime {
 public:
  WakeupMatrixRuntime(StationId u, Slot wake, const comb::LazyTransmissionMatrix& matrix)
      : u_(u), matrix_(matrix) {
    const auto& p = matrix_.params();
    operative_ = p.mu(wake);
    row_ = 1;
    row_end_ = operative_ + static_cast<Slot>(p.m(1));
  }

  [[nodiscard]] bool transmits(Slot t) override {
    const auto& p = matrix_.params();
    if (t < operative_) return false;  // waiting for the window boundary
    while (t >= row_end_) {
      if (row_ < p.rows) {
        ++row_;
      } else {
        row_ = 1;  // wrap: restart the scan (§5.1 guarantee fires earlier)
      }
      row_end_ += static_cast<Slot>(p.m(row_));
    }
    return matrix_.contains(row_, static_cast<std::uint64_t>(t), u_);
  }

 private:
  StationId u_;
  const comb::LazyTransmissionMatrix& matrix_;
  Slot operative_ = 0;
  unsigned row_ = 1;
  Slot row_end_ = 0;
};

}  // namespace

std::unique_ptr<StationRuntime> WakeupMatrixProtocol::make_runtime(StationId u, Slot wake) const {
  return std::make_unique<WakeupMatrixRuntime>(u, wake, matrix_);
}

void WakeupMatrixProtocol::schedule_block(StationId u, Slot wake, Slot from,
                                          std::uint64_t* out_words, std::size_t n_words) const {
  const auto& p = matrix_.params();
  const Slot operative = p.mu(wake);
  // Row state at the first queried slot: the runtime's scan walks rows
  // 1..rows cyclically with durations m(i) starting at `operative`, so the
  // state at any slot is recoverable by reducing the elapsed time modulo
  // one full scan and replaying the prefix.
  unsigned row = 1;
  Slot row_end = operative + static_cast<Slot>(p.m(1));
  const auto scan = static_cast<Slot>(p.total_scan());
  Slot t = from;
  if (t > operative && scan > 0) {
    const Slot skipped = ((t - operative) / scan) * scan;
    row_end += skipped;  // whole scans carry no row-state change
  }
  for (std::size_t w = 0; w < n_words; ++w) {
    std::uint64_t word = 0;
    for (unsigned j = 0; j < 64; ++j, ++t) {
      if (t < operative) continue;  // waiting for the window boundary
      while (t >= row_end) {
        row = row < p.rows ? row + 1 : 1;  // wrap: restart the scan
        row_end += static_cast<Slot>(p.m(row));
      }
      if (matrix_.contains(row, static_cast<std::uint64_t>(t), u)) {
        word |= std::uint64_t{1} << j;
      }
    }
    out_words[w] = word;
  }
}

}  // namespace wakeup::proto
