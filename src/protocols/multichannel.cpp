#include "protocols/multichannel.hpp"

#include "util/math.hpp"
#include "util/rng.hpp"

namespace wakeup::proto {
namespace {

// ------------------------------------------------------------- adapter

class AdapterRuntime final : public McStationRuntime {
 public:
  explicit AdapterRuntime(std::unique_ptr<StationRuntime> inner) : inner_(std::move(inner)) {}

  [[nodiscard]] mac::ChannelAction act(Slot t) override {
    return {inner_->transmits(t), 0};
  }
  void feedback(Slot t, ChannelFeedback fb) override { inner_->feedback(t, fb); }

 private:
  std::unique_ptr<StationRuntime> inner_;
};

class SingleChannelAdapter final : public McProtocol {
 public:
  SingleChannelAdapter(ProtocolPtr inner, std::uint32_t channels)
      : inner_(std::move(inner)), channels_(channels < 1 ? 1 : channels) {}

  [[nodiscard]] std::string name() const override { return "mc_adapter(" + inner_->name() + ")"; }
  [[nodiscard]] std::uint32_t channels() const override { return channels_; }
  [[nodiscard]] std::unique_ptr<McStationRuntime> make_runtime(StationId u,
                                                               Slot wake) const override {
    return std::make_unique<AdapterRuntime>(inner_->make_runtime(u, wake));
  }
  [[nodiscard]] const Protocol* single_channel() const override { return inner_.get(); }

 private:
  ProtocolPtr inner_;
  std::uint32_t channels_;
};

// ------------------------------------------------------- striped round-robin

class StripedRrRuntime final : public McStationRuntime {
 public:
  StripedRrRuntime(StationId u, std::uint32_t channels, std::uint32_t cycle)
      : channel_(u % channels), turn_(u / channels), cycle_(cycle) {}

  [[nodiscard]] mac::ChannelAction act(Slot t) override {
    const bool mine = static_cast<std::uint32_t>(t % static_cast<Slot>(cycle_)) == turn_;
    return {mine, channel_};
  }

 private:
  std::uint32_t channel_;
  std::uint32_t turn_;
  std::uint32_t cycle_;
};

class StripedRoundRobin final : public McProtocol {
 public:
  StripedRoundRobin(std::uint32_t n, std::uint32_t channels)
      : n_(n < 1 ? 1 : n),
        channels_(channels < 1 ? 1 : channels),
        cycle_(static_cast<std::uint32_t>(util::ceil_div(n_, channels_))) {}

  [[nodiscard]] std::string name() const override { return "mc_striped_rr"; }
  [[nodiscard]] std::uint32_t channels() const override { return channels_; }
  [[nodiscard]] std::unique_ptr<McStationRuntime> make_runtime(StationId u,
                                                               Slot wake) const override {
    (void)wake;
    return std::make_unique<StripedRrRuntime>(u, channels_, cycle_ < 1 ? 1 : cycle_);
  }

 private:
  std::uint32_t n_;
  std::uint32_t channels_;
  std::uint32_t cycle_;
};

// ------------------------------------------------------ group wait_and_go

class GroupWagRuntime final : public McStationRuntime {
 public:
  GroupWagRuntime(StationId u, Slot wake, std::uint32_t channel,
                  comb::DoublingSchedulePtr schedule)
      : u_(u), channel_(channel), schedule_(std::move(schedule)) {
    go_ = schedule_->next_family_start(static_cast<std::uint64_t>(wake < 0 ? 0 : wake));
  }

  [[nodiscard]] mac::ChannelAction act(Slot t) override {
    const auto ut = static_cast<std::uint64_t>(t);
    const bool tx = t >= 0 && ut >= go_ && schedule_->transmits(u_, ut);
    return {tx, channel_};
  }

 private:
  StationId u_;
  std::uint32_t channel_;
  comb::DoublingSchedulePtr schedule_;
  std::uint64_t go_ = 0;
};

class GroupWaitAndGo final : public McProtocol {
 public:
  GroupWaitAndGo(std::uint32_t n, std::uint32_t k, std::uint32_t channels,
                 comb::FamilyKind kind, std::uint64_t seed)
      : channels_(channels < 1 ? 1 : channels), seed_(seed) {
    // Per-group contention is ~k/C; keep the full-k depth for safety when
    // hashing is uneven, but per-group schedules use independent seeds.
    schedules_.reserve(channels_);
    for (std::uint32_t c = 0; c < channels_; ++c) {
      comb::DoublingSchedule::Config config;
      config.n = n;
      config.k_max = std::max<std::uint32_t>(2, k);
      config.kind = kind;
      config.seed = util::hash_words({seed, 0x4d43574147ULL /* "MCWAG" */, c});
      schedules_.push_back(comb::make_doubling_schedule(config));
    }
  }

  [[nodiscard]] std::string name() const override { return "mc_group_wag"; }
  [[nodiscard]] std::uint32_t channels() const override { return channels_; }
  [[nodiscard]] std::unique_ptr<McStationRuntime> make_runtime(StationId u,
                                                               Slot wake) const override {
    const auto group = static_cast<std::uint32_t>(
        util::hash_words({seed_, 0x47525055ULL /* "GRPU" */, u}) % channels_);
    return std::make_unique<GroupWagRuntime>(u, wake, group, schedules_[group]);
  }

 private:
  std::uint32_t channels_;
  std::uint64_t seed_;
  std::vector<comb::DoublingSchedulePtr> schedules_;
};

// ---------------------------------------------------- random-channel RPD

class RandomRpdRuntime final : public McStationRuntime {
 public:
  RandomRpdRuntime(std::uint32_t channels, unsigned ell, util::Rng rng)
      : channels_(channels), ell_(ell), rng_(rng) {}

  [[nodiscard]] mac::ChannelAction act(Slot t) override {
    const auto channel = static_cast<std::uint32_t>(rng_.uniform(channels_));
    const auto phase = static_cast<unsigned>(static_cast<std::uint64_t>(t) %
                                             static_cast<std::uint64_t>(ell_));
    return {rng_.bernoulli_pow2(1 + phase), channel};
  }

 private:
  std::uint32_t channels_;
  unsigned ell_;
  util::Rng rng_;
};

class RandomChannelRpd final : public McProtocol {
 public:
  RandomChannelRpd(std::uint32_t n, std::uint32_t channels, std::uint64_t seed)
      : channels_(channels < 1 ? 1 : channels),
        ell_(2 * util::log2n_clamped(n)),
        seed_(seed) {}

  [[nodiscard]] std::string name() const override { return "mc_random_rpd"; }
  [[nodiscard]] std::uint32_t channels() const override { return channels_; }
  [[nodiscard]] std::unique_ptr<McStationRuntime> make_runtime(StationId u,
                                                               Slot wake) const override {
    util::Rng rng(util::hash_words({seed_, 0x4d435250ULL /* "MCRP" */, u,
                                    static_cast<std::uint64_t>(wake)}));
    return std::make_unique<RandomRpdRuntime>(channels_, ell_ < 2 ? 2 : ell_, rng);
  }

 private:
  std::uint32_t channels_;
  unsigned ell_;
  std::uint64_t seed_;
};

}  // namespace

McProtocolPtr make_single_channel_adapter(ProtocolPtr inner, std::uint32_t channels) {
  return std::make_shared<SingleChannelAdapter>(std::move(inner), channels);
}

McProtocolPtr make_striped_round_robin(std::uint32_t n, std::uint32_t channels) {
  return std::make_shared<StripedRoundRobin>(n, channels);
}

McProtocolPtr make_group_wait_and_go(std::uint32_t n, std::uint32_t k, std::uint32_t channels,
                                     comb::FamilyKind kind, std::uint64_t seed) {
  return std::make_shared<GroupWaitAndGo>(n, k, channels, kind, seed);
}

McProtocolPtr make_random_channel_rpd(std::uint32_t n, std::uint32_t channels,
                                      std::uint64_t seed) {
  return std::make_shared<RandomChannelRpd>(n, channels, seed);
}

}  // namespace wakeup::proto
