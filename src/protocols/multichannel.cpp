#include "protocols/multichannel.hpp"

#include "util/math.hpp"
#include "util/rng.hpp"

namespace wakeup::proto {
namespace {

// ------------------------------------------------------------- adapter

class AdapterRuntime final : public McStationRuntime {
 public:
  explicit AdapterRuntime(std::unique_ptr<StationRuntime> inner) : inner_(std::move(inner)) {}

  [[nodiscard]] mac::ChannelAction act(Slot t) override {
    return {inner_->transmits(t), 0};
  }
  void feedback(Slot t, ChannelFeedback fb) override { inner_->feedback(t, fb); }

 private:
  std::unique_ptr<StationRuntime> inner_;
};

/// Lifts an inner single-channel oblivious schedule onto lane 0 of a
/// C-lane schedule: words and trial-batching hints forward unchanged, only
/// the lane geometry widens.
class AdapterSchedule final : public ObliviousSchedule {
 public:
  AdapterSchedule(const ObliviousSchedule* inner, std::uint32_t channels)
      : inner_(inner), channels_(channels) {}

  [[nodiscard]] std::uint32_t schedule_channels() const override { return channels_; }
  void schedule_block(StationId u, Slot wake, Slot from, std::uint64_t* out_words,
                      std::size_t n_words) const override {
    inner_->schedule_block(u, wake, from, out_words, n_words);
  }
  [[nodiscard]] bool words_are_cheap() const override { return inner_->words_are_cheap(); }
  [[nodiscard]] std::uint64_t wake_key(Slot wake) const override {
    return inner_->wake_key(wake);
  }
  [[nodiscard]] std::uint64_t period() const override { return inner_->period(); }
  [[nodiscard]] Slot steady_from(Slot wake) const override { return inner_->steady_from(wake); }

 private:
  const ObliviousSchedule* inner_;
  std::uint32_t channels_;
};

class SingleChannelAdapter final : public McProtocol {
 public:
  SingleChannelAdapter(ProtocolPtr inner, std::uint32_t channels)
      : inner_(std::move(inner)), channels_(channels < 1 ? 1 : channels) {
    if (const ObliviousSchedule* schedule = inner_->oblivious_schedule()) {
      schedule_ = std::make_unique<AdapterSchedule>(schedule, channels_);
    }
  }

  [[nodiscard]] std::string name() const override { return "mc_adapter(" + inner_->name() + ")"; }
  [[nodiscard]] std::uint32_t channels() const override { return channels_; }
  [[nodiscard]] std::unique_ptr<McStationRuntime> make_runtime(StationId u,
                                                               Slot wake) const override {
    return std::make_unique<AdapterRuntime>(inner_->make_runtime(u, wake));
  }
  [[nodiscard]] const Protocol* single_channel() const override { return inner_.get(); }
  [[nodiscard]] const ObliviousSchedule* oblivious_schedule() const override {
    return schedule_.get();
  }
  [[nodiscard]] bool randomized() const override {
    return inner_->requirements().randomized;
  }

 private:
  ProtocolPtr inner_;
  std::uint32_t channels_;
  std::unique_ptr<AdapterSchedule> schedule_;
};

// ------------------------------------------------------- striped round-robin

class StripedRrRuntime final : public McStationRuntime {
 public:
  StripedRrRuntime(StationId u, std::uint32_t channels, std::uint32_t cycle)
      : channel_(u % channels), turn_(u / channels), cycle_(cycle) {}

  [[nodiscard]] mac::ChannelAction act(Slot t) override {
    const bool mine = static_cast<std::uint32_t>(t % static_cast<Slot>(cycle_)) == turn_;
    return {mine, channel_};
  }

 private:
  std::uint32_t channel_;
  std::uint32_t turn_;
  std::uint32_t cycle_;
};

class StripedRoundRobin final : public McProtocol, public ObliviousSchedule {
 public:
  StripedRoundRobin(std::uint32_t n, std::uint32_t channels)
      : n_(n < 1 ? 1 : n),
        channels_(channels < 1 ? 1 : channels),
        cycle_(static_cast<std::uint32_t>(util::ceil_div(n_, channels_))) {
    if (cycle_ < 1) cycle_ = 1;
  }

  [[nodiscard]] std::string name() const override { return "mc_striped_rr"; }
  [[nodiscard]] std::uint32_t channels() const override { return channels_; }
  [[nodiscard]] std::unique_ptr<McStationRuntime> make_runtime(StationId u,
                                                               Slot wake) const override {
    (void)wake;
    return std::make_unique<StripedRrRuntime>(u, channels_, cycle_);
  }

  // Oblivious capability: station u owns channel u % C and cycle slot
  // u / C — TDM striped across lanes, a pure function of the global clock.
  [[nodiscard]] const ObliviousSchedule* oblivious_schedule() const override { return this; }
  [[nodiscard]] std::uint32_t schedule_channels() const override { return channels_; }
  [[nodiscard]] std::uint32_t channel_lane(StationId u, Slot wake) const override {
    (void)wake;
    return u % channels_;
  }
  void schedule_block(StationId u, Slot wake, Slot from, std::uint64_t* out_words,
                      std::size_t n_words) const override {
    (void)wake;  // the stripe depends only on the global clock
    const auto turn = static_cast<Slot>(u / channels_);
    const auto cycle = static_cast<Slot>(cycle_);
    if (turn >= cycle) {  // out-of-universe station: its turn never comes
      for (std::size_t w = 0; w < n_words; ++w) out_words[w] = 0;
      return;
    }
    for (std::size_t w = 0; w < n_words; ++w) {
      const Slot t0 = from + static_cast<Slot>(64 * w);
      Slot j = (turn - t0) % cycle;
      if (j < 0) j += cycle;
      std::uint64_t word = 0;
      for (; j < 64; j += cycle) word |= std::uint64_t{1} << j;
      out_words[w] = word;
    }
  }
  [[nodiscard]] bool words_are_cheap() const override { return true; }
  /// One wake class (the stripe ignores the wake), period = one cycle.
  [[nodiscard]] std::uint64_t wake_key(Slot wake) const override {
    (void)wake;
    return 0;
  }
  [[nodiscard]] std::uint64_t period() const override { return cycle_; }
  [[nodiscard]] Slot steady_from(Slot wake) const override {
    (void)wake;
    return 0;
  }

 private:
  std::uint32_t n_;
  std::uint32_t channels_;
  std::uint32_t cycle_;
};

// ------------------------------------------------------ group wait_and_go

class GroupWagRuntime final : public McStationRuntime {
 public:
  GroupWagRuntime(StationId u, Slot wake, std::uint32_t channel,
                  comb::DoublingSchedulePtr schedule)
      : u_(u), channel_(channel), schedule_(std::move(schedule)) {
    go_ = schedule_->next_family_start(static_cast<std::uint64_t>(wake < 0 ? 0 : wake));
  }

  [[nodiscard]] mac::ChannelAction act(Slot t) override {
    const auto ut = static_cast<std::uint64_t>(t);
    const bool tx = t >= 0 && ut >= go_ && schedule_->transmits(u_, ut);
    return {tx, channel_};
  }

 private:
  StationId u_;
  std::uint32_t channel_;
  comb::DoublingSchedulePtr schedule_;
  std::uint64_t go_ = 0;
};

class GroupWaitAndGo final : public McProtocol, public ObliviousSchedule {
 public:
  GroupWaitAndGo(std::uint32_t n, std::uint32_t k, std::uint32_t channels,
                 comb::FamilyKind kind, std::uint64_t seed)
      : channels_(channels < 1 ? 1 : channels), seed_(seed) {
    // Per-group contention is ~k/C; keep the full-k depth for safety when
    // hashing is uneven, but per-group schedules use independent seeds.
    schedules_.reserve(channels_);
    for (std::uint32_t c = 0; c < channels_; ++c) {
      comb::DoublingSchedule::Config config;
      config.n = n;
      config.k_max = std::max<std::uint32_t>(2, k);
      config.kind = kind;
      config.seed = util::hash_words({seed, 0x4d43574147ULL /* "MCWAG" */, c});
      schedules_.push_back(comb::make_doubling_schedule(config));
    }
    // Family *sizes* are usually seed-independent (the seed only picks set
    // membership), in which case every group shares one boundary/period
    // structure and the trial-batching hints can be exact.  When a builder
    // does vary sizes by seed, fall back to the always-sound defaults.
    uniform_structure_ = true;
    for (std::uint32_t c = 1; c < channels_ && uniform_structure_; ++c) {
      if (schedules_[c]->period() != schedules_[0]->period() ||
          schedules_[c]->family_count() != schedules_[0]->family_count()) {
        uniform_structure_ = false;
        break;
      }
      for (std::size_t i = 0; i < schedules_[0]->family_count(); ++i) {
        if (schedules_[c]->family_start(i) != schedules_[0]->family_start(i)) {
          uniform_structure_ = false;
          break;
        }
      }
    }
  }

  [[nodiscard]] std::string name() const override { return "mc_group_wag"; }
  [[nodiscard]] std::uint32_t channels() const override { return channels_; }
  [[nodiscard]] std::unique_ptr<McStationRuntime> make_runtime(StationId u,
                                                               Slot wake) const override {
    const std::uint32_t group = group_of(u);
    return std::make_unique<GroupWagRuntime>(u, wake, group, schedules_[group]);
  }

  // Oblivious capability: station u is pinned to channel h(u) and runs its
  // group's doubling schedule there, frozen until the next family boundary
  // — the wait_and_go rule per lane.
  [[nodiscard]] const ObliviousSchedule* oblivious_schedule() const override { return this; }
  [[nodiscard]] std::uint32_t schedule_channels() const override { return channels_; }
  [[nodiscard]] std::uint32_t channel_lane(StationId u, Slot wake) const override {
    (void)wake;
    return group_of(u);
  }
  void schedule_block(StationId u, Slot wake, Slot from, std::uint64_t* out_words,
                      std::size_t n_words) const override {
    const comb::DoublingSchedule& schedule = *schedules_[group_of(u)];
    const auto j0 = static_cast<std::uint64_t>(wake < 0 ? 0 : wake);
    const std::uint64_t go = schedule.next_family_start(j0);
    for (std::size_t w = 0; w < n_words; ++w) {
      const Slot t0 = from + static_cast<Slot>(64 * w);
      if (t0 < 0) {  // negative slots never transmit; per-bit boundary path
        std::uint64_t word = 0;
        for (unsigned j = 0; j < 64; ++j) {
          const Slot t = t0 + static_cast<Slot>(j);
          if (t < 0 || static_cast<std::uint64_t>(t) < go) continue;
          if (schedule.transmits(u, static_cast<std::uint64_t>(t))) {
            word |= std::uint64_t{1} << j;
          }
        }
        out_words[w] = word;
        continue;
      }
      const auto ut0 = static_cast<std::uint64_t>(t0);
      if (ut0 + 64 <= go) {  // still waiting for a family boundary
        out_words[w] = 0;
        continue;
      }
      std::uint64_t word = schedule.schedule_word(u, ut0);
      if (ut0 < go) word &= ~std::uint64_t{0} << (go - ut0);
      out_words[w] = word;
    }
  }
  /// With a shared boundary structure the emission depends on the wake
  /// only through the (common) next family start; otherwise every wake is
  /// its own class (the sound default).
  [[nodiscard]] std::uint64_t wake_key(Slot wake) const override {
    const auto j = static_cast<std::uint64_t>(wake < 0 ? 0 : wake);
    if (!uniform_structure_) return j;
    return schedules_[0]->next_family_start(j);
  }
  [[nodiscard]] std::uint64_t period() const override {
    return uniform_structure_ ? schedules_[0]->period() : 0;
  }
  [[nodiscard]] Slot steady_from(Slot wake) const override {
    const auto j = static_cast<std::uint64_t>(wake < 0 ? 0 : wake);
    if (!uniform_structure_) return wake < 0 ? 0 : wake;
    return static_cast<Slot>(schedules_[0]->next_family_start(j));
  }

 private:
  [[nodiscard]] std::uint32_t group_of(StationId u) const {
    return static_cast<std::uint32_t>(
        util::hash_words({seed_, 0x47525055ULL /* "GRPU" */, u}) % channels_);
  }

  std::uint32_t channels_;
  std::uint64_t seed_;
  std::vector<comb::DoublingSchedulePtr> schedules_;
  bool uniform_structure_ = false;
};

// ---------------------------------------------------- random-channel RPD

class RandomRpdRuntime final : public McStationRuntime {
 public:
  RandomRpdRuntime(std::uint32_t channels, unsigned ell, util::Rng rng)
      : channels_(channels), ell_(ell), rng_(rng) {}

  [[nodiscard]] mac::ChannelAction act(Slot t) override {
    const auto channel = static_cast<std::uint32_t>(rng_.uniform(channels_));
    const auto phase = static_cast<unsigned>(static_cast<std::uint64_t>(t) %
                                             static_cast<std::uint64_t>(ell_));
    return {rng_.bernoulli_pow2(1 + phase), channel};
  }

 private:
  std::uint32_t channels_;
  unsigned ell_;
  util::Rng rng_;
};

class RandomChannelRpd final : public McProtocol {
 public:
  RandomChannelRpd(std::uint32_t n, std::uint32_t channels, std::uint64_t seed)
      : channels_(channels < 1 ? 1 : channels),
        ell_(2 * util::log2n_clamped(n)),
        seed_(seed) {}

  [[nodiscard]] std::string name() const override { return "mc_random_rpd"; }
  [[nodiscard]] std::uint32_t channels() const override { return channels_; }
  [[nodiscard]] bool randomized() const override { return true; }
  [[nodiscard]] std::unique_ptr<McStationRuntime> make_runtime(StationId u,
                                                               Slot wake) const override {
    util::Rng rng(util::hash_words({seed_, 0x4d435250ULL /* "MCRP" */, u,
                                    static_cast<std::uint64_t>(wake)}));
    return std::make_unique<RandomRpdRuntime>(channels_, ell_ < 2 ? 2 : ell_, rng);
  }

 private:
  std::uint32_t channels_;
  unsigned ell_;
  std::uint64_t seed_;
};

}  // namespace

McProtocolPtr make_single_channel_adapter(ProtocolPtr inner, std::uint32_t channels) {
  return std::make_shared<SingleChannelAdapter>(std::move(inner), channels);
}

McProtocolPtr make_striped_round_robin(std::uint32_t n, std::uint32_t channels) {
  return std::make_shared<StripedRoundRobin>(n, channels);
}

McProtocolPtr make_group_wait_and_go(std::uint32_t n, std::uint32_t k, std::uint32_t channels,
                                     comb::FamilyKind kind, std::uint64_t seed) {
  return std::make_shared<GroupWaitAndGo>(n, k, channels, kind, seed);
}

McProtocolPtr make_random_channel_rpd(std::uint32_t n, std::uint32_t channels,
                                      std::uint64_t seed) {
  return std::make_shared<RandomChannelRpd>(n, channels, seed);
}

}  // namespace wakeup::proto
