#include "protocols/adaptive_cw.hpp"

#include <algorithm>

#include "util/rng.hpp"

namespace wakeup::proto {
namespace {

/// Shared AIMD window mechanics: uniform pick inside [start, start + cw),
/// double on expiry without an own delivery, halve on delivery.
class CwWindow {
 public:
  CwWindow(std::uint32_t cw_min, unsigned cw_max_log2, util::Rng rng)
      : cw_min_(std::max<std::uint32_t>(1, cw_min)),
        cw_max_(std::uint64_t{1} << (cw_max_log2 > 30 ? 30 : cw_max_log2)),
        cw_(cw_min_),
        rng_(rng) {}

  void open(Slot start, unsigned penalty) {
    const std::uint64_t effective = std::min<std::uint64_t>(cw_ << penalty, cw_max_);
    window_end_ = start + static_cast<Slot>(effective);
    pick_ = start + static_cast<Slot>(rng_.uniform(effective));
  }

  /// Returns true when slot t transmits; reopens (with doubling) on expiry.
  bool transmits(Slot t, unsigned penalty) {
    if (t >= window_end_) {
      cw_ = std::min<std::uint64_t>(cw_ * 2, cw_max_);
      open(window_end_, penalty);
      // Idle gaps (empty queue) can leave window_end_ far behind t.
      while (t >= window_end_) open(window_end_, penalty);
    }
    return t == pick_;
  }

  void on_delivery() { cw_ = std::max<std::uint64_t>(cw_ / 2, cw_min_); }

 private:
  std::uint32_t cw_min_;
  std::uint64_t cw_max_;
  std::uint64_t cw_;
  Slot window_end_ = 0;
  Slot pick_ = 0;
  util::Rng rng_;
};

/// One-shot fallback for static wake-up runs: AIMD window, no fairness
/// state (a single packet has no share to steer).
class AdaptiveCwRuntime final : public StationRuntime {
 public:
  AdaptiveCwRuntime(Slot wake, std::uint32_t cw_min, unsigned cw_max_log2, util::Rng rng)
      : window_(cw_min, cw_max_log2, rng) {
    window_.open(wake, 0);
  }

  [[nodiscard]] bool transmits(Slot t) override { return window_.transmits(t, 0); }

 private:
  CwWindow window_;
};

class AdaptiveCwStation final : public DynamicStation {
 public:
  AdaptiveCwStation(const AdaptiveCwProtocol::Config& config, util::Rng rng)
      : config_(config),
        window_(config.cw_min, config.cw_max_log2, rng),
        epoch_end_(config.epoch) {}

  void packet_start(Slot start) override { window_.open(start, penalty_); }

  [[nodiscard]] bool transmits(Slot t) override { return window_.transmits(t, penalty_); }

  void feedback(Slot t, ChannelFeedback fb, bool delivered) override {
    if (fb == ChannelFeedback::kSuccess) {
      ++heard_in_epoch_;
      if (delivered) {
        ++own_in_epoch_;
        window_.on_delivery();
      }
    }
    if (t >= epoch_end_) {
      settle_epoch();
      epoch_end_ = t + config_.epoch;
    }
  }

 private:
  /// The distributed fairness step: compare this station's share of heard
  /// successes against the fair share 1/k; widen the effective window when
  /// over-served, narrow when under-served.  Epochs with too few successes
  /// carry no signal and are skipped.
  void settle_epoch() {
    if (heard_in_epoch_ >= 4) {
      const double share =
          static_cast<double>(own_in_epoch_) / static_cast<double>(heard_in_epoch_);
      const double target = 1.0 / static_cast<double>(std::max<std::uint32_t>(1, config_.k));
      if (share > target * (1.0 + config_.tolerance)) {
        penalty_ = std::min(penalty_ + 1, 4u);
      } else if (share < target / (1.0 + config_.tolerance) && penalty_ > 0) {
        --penalty_;
      }
    }
    own_in_epoch_ = 0;
    heard_in_epoch_ = 0;
  }

  AdaptiveCwProtocol::Config config_;
  CwWindow window_;
  unsigned penalty_ = 0;
  Slot epoch_end_;
  std::uint64_t own_in_epoch_ = 0;
  std::uint64_t heard_in_epoch_ = 0;
};

}  // namespace

AdaptiveCwProtocol::AdaptiveCwProtocol(Config config) : config_(config) {
  config_.cw_min = std::max<std::uint32_t>(1, config_.cw_min);
  config_.epoch = std::max<Slot>(16, config_.epoch);
  if (config_.tolerance < 0.0) config_.tolerance = 0.0;
}

std::unique_ptr<StationRuntime> AdaptiveCwProtocol::make_runtime(StationId u, Slot wake) const {
  util::Rng rng(util::hash_words({config_.seed, 0x41435720ULL /* "ACW " */, u,
                                  static_cast<std::uint64_t>(wake)}));
  return std::make_unique<AdaptiveCwRuntime>(wake, config_.cw_min, config_.cw_max_log2, rng);
}

std::unique_ptr<DynamicStation> AdaptiveCwProtocol::make_dynamic_station(StationId u) const {
  // One stream per station per trial — packets share it, so the adaptive
  // state and its draws are a deterministic function of (seed, u).
  util::Rng rng(util::hash_words({config_.seed, 0x414357ULL /* "ACW" */, u}));
  return std::make_unique<AdaptiveCwStation>(config_, rng);
}

}  // namespace wakeup::proto
