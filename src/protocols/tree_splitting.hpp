#pragma once

/// \file tree_splitting.hpp
/// Capetanakis tree-splitting (extension beyond the paper's model).
///
/// The paper's related work contrasts the no-feedback model with the
/// collision-detection model ([4], Greenberg–Winograd).  This adaptive
/// protocol exercises that contrast: it REQUIRES ternary feedback
/// (silence / success / collision) and resolves contention by recursively
/// splitting colliding groups with private coin flips, using the standard
/// counter implementation of the splitting stack (free-access variant:
/// newcomers join the front of the stack on arrival).
///
/// Expected O(k) slots to resolve all k stations — used by the
/// full-resolution extension bench as the adaptive comparator.

#include "protocols/protocol.hpp"

namespace wakeup::proto {

class TreeSplittingProtocol final : public Protocol {
 public:
  explicit TreeSplittingProtocol(std::uint64_t seed) : seed_(seed) {}

  [[nodiscard]] std::string name() const override { return "tree_splitting"; }
  [[nodiscard]] Requirements requirements() const override {
    Requirements r;
    r.needs_collision_detection = true;
    r.randomized = true;
    return r;
  }
  [[nodiscard]] std::unique_ptr<StationRuntime> make_runtime(StationId u,
                                                             Slot wake) const override;

 private:
  std::uint64_t seed_;
};

}  // namespace wakeup::proto
