#include "protocols/backoff.hpp"

#include "util/rng.hpp"

namespace wakeup::proto {
namespace {

class BackoffRuntime final : public StationRuntime {
 public:
  BackoffRuntime(Slot wake, std::uint32_t initial_window, unsigned max_window_log2,
                 util::Rng rng)
      : max_window_log2_(max_window_log2), rng_(rng) {
    window_ = initial_window;
    open_window(wake);
  }

  [[nodiscard]] bool transmits(Slot t) override {
    if (t >= window_end_) {
      // A full window passed without hearing success: double and retry.
      if (window_ < (std::uint64_t{1} << max_window_log2_)) window_ *= 2;
      open_window(window_end_);
    }
    return t == pick_;
  }

  void feedback(Slot t, ChannelFeedback fb) override {
    (void)t;
    // In the paper's no-CD model a station only ever hears kSuccess or
    // kNothing; success ends the wake-up run, so no state is needed here.
    // (Under collision detection one could reset the window on silence;
    // deliberately not done to stay within the paper's feedback model.)
    (void)fb;
  }

 private:
  void open_window(Slot start) {
    window_end_ = start + static_cast<Slot>(window_);
    pick_ = start + static_cast<Slot>(rng_.uniform(window_));
  }

  std::uint64_t window_;
  unsigned max_window_log2_;
  Slot window_end_ = 0;
  Slot pick_ = 0;
  util::Rng rng_;
};

/// Dynamic-traffic BEB: the window survives across the packets of one
/// trial as a congestion estimate — an own delivery halves it (additive
/// relief would be too slow against doubling), a window that expires
/// without one still doubles.  Each new head-of-line packet re-contends
/// inside the inherited window instead of restarting from scratch.
class BackoffStation final : public DynamicStation {
 public:
  BackoffStation(std::uint32_t initial_window, unsigned max_window_log2, util::Rng rng)
      : initial_window_(initial_window), max_window_log2_(max_window_log2), rng_(rng) {
    window_ = initial_window_;
  }

  void packet_start(Slot start) override { open_window(start); }

  [[nodiscard]] bool transmits(Slot t) override {
    if (t >= window_end_) {
      if (window_ < (std::uint64_t{1} << max_window_log2_)) window_ *= 2;
      open_window(window_end_);
      // Idle gaps (empty queue) can leave window_end_ far behind t; those
      // skipped windows saw no traffic from us, so they do not double.
      while (t >= window_end_) open_window(window_end_);
    }
    return t == pick_;
  }

  void feedback(Slot t, ChannelFeedback fb, bool delivered) override {
    (void)t;
    (void)fb;
    if (delivered) window_ = std::max<std::uint64_t>(window_ / 2, initial_window_);
  }

 private:
  void open_window(Slot start) {
    window_end_ = start + static_cast<Slot>(window_);
    pick_ = start + static_cast<Slot>(rng_.uniform(window_));
  }

  std::uint32_t initial_window_;
  unsigned max_window_log2_;
  std::uint64_t window_;
  Slot window_end_ = 0;
  Slot pick_ = 0;
  util::Rng rng_;
};

}  // namespace

std::unique_ptr<StationRuntime> BinaryBackoffProtocol::make_runtime(StationId u,
                                                                    Slot wake) const {
  util::Rng rng(util::hash_words({seed_, 0x424f4646ULL /* "BOFF" */, u,
                                  static_cast<std::uint64_t>(wake)}));
  return std::make_unique<BackoffRuntime>(wake, initial_window_, max_window_log2_, rng);
}

std::unique_ptr<DynamicStation> BinaryBackoffProtocol::make_dynamic_station(StationId u) const {
  util::Rng rng(util::hash_words({seed_, 0x44424f4646ULL /* "DBOFF" */, u}));
  return std::make_unique<BackoffStation>(initial_window_, max_window_log2_, rng);
}

}  // namespace wakeup::proto
