#include "protocols/backoff.hpp"

#include "util/rng.hpp"

namespace wakeup::proto {
namespace {

class BackoffRuntime final : public StationRuntime {
 public:
  BackoffRuntime(Slot wake, std::uint32_t initial_window, unsigned max_window_log2,
                 util::Rng rng)
      : max_window_log2_(max_window_log2), rng_(rng) {
    window_ = initial_window;
    open_window(wake);
  }

  [[nodiscard]] bool transmits(Slot t) override {
    if (t >= window_end_) {
      // A full window passed without hearing success: double and retry.
      if (window_ < (std::uint64_t{1} << max_window_log2_)) window_ *= 2;
      open_window(window_end_);
    }
    return t == pick_;
  }

  void feedback(Slot t, ChannelFeedback fb) override {
    (void)t;
    // In the paper's no-CD model a station only ever hears kSuccess or
    // kNothing; success ends the wake-up run, so no state is needed here.
    // (Under collision detection one could reset the window on silence;
    // deliberately not done to stay within the paper's feedback model.)
    (void)fb;
  }

 private:
  void open_window(Slot start) {
    window_end_ = start + static_cast<Slot>(window_);
    pick_ = start + static_cast<Slot>(rng_.uniform(window_));
  }

  std::uint64_t window_;
  unsigned max_window_log2_;
  Slot window_end_ = 0;
  Slot pick_ = 0;
  util::Rng rng_;
};

}  // namespace

std::unique_ptr<StationRuntime> BinaryBackoffProtocol::make_runtime(StationId u,
                                                                    Slot wake) const {
  util::Rng rng(util::hash_words({seed_, 0x424f4646ULL /* "BOFF" */, u,
                                  static_cast<std::uint64_t>(wake)}));
  return std::make_unique<BackoffRuntime>(wake, initial_window_, max_window_log2_, rng);
}

}  // namespace wakeup::proto
