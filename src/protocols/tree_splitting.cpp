#include "protocols/tree_splitting.hpp"

#include "util/rng.hpp"

namespace wakeup::proto {
namespace {

/// Counter form of the splitting stack: a station transmits when its
/// counter is 0.  On collision, transmitters flip a fair coin to stay at 0
/// or step back to 1 while all waiting stations step back by one; on
/// silence or success every waiting station steps forward.
class TreeSplittingRuntime final : public StationRuntime {
 public:
  explicit TreeSplittingRuntime(util::Rng rng) : rng_(rng) {}

  [[nodiscard]] bool transmits(Slot t) override {
    (void)t;
    sent_last_ = (counter_ == 0);
    return sent_last_;
  }

  void feedback(Slot t, ChannelFeedback fb) override {
    (void)t;
    switch (fb) {
      case ChannelFeedback::kCollision:
        if (sent_last_) {
          counter_ = rng_.bernoulli_pow2(1) ? 0 : 1;
        } else {
          ++counter_;
        }
        break;
      case ChannelFeedback::kSilence:
      case ChannelFeedback::kSuccess:
        if (counter_ > 0) --counter_;
        break;
      case ChannelFeedback::kNothing:
        // No usable feedback (the protocol is being run outside its model);
        // degenerate to persistent transmission attempts.
        break;
    }
  }

 private:
  util::Rng rng_;
  std::uint64_t counter_ = 0;
  bool sent_last_ = false;
};

}  // namespace

std::unique_ptr<StationRuntime> TreeSplittingProtocol::make_runtime(StationId u,
                                                                    Slot wake) const {
  util::Rng rng(util::hash_words({seed_, 0x54524545ULL /* "TREE" */, u,
                                  static_cast<std::uint64_t>(wake)}));
  return std::make_unique<TreeSplittingRuntime>(rng);
}

}  // namespace wakeup::proto
