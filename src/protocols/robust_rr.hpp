#pragma once

/// \file robust_rr.hpp
/// Repetition round-robin: station u transmits in a run of r consecutive
/// slots, exactly when (t / r) mod n == u.
///
/// The graceful-degradation baseline of the channel-impairment subsystem
/// (mac/impairment.hpp).  Plain round-robin loses a station's entire turn
/// to a single noisy or jammed slot; the r-fold repetition survives any
/// r - 1 impaired slots of a turn — under iid feedback noise p a turn
/// stays clean with probability 1 - p^r instead of 1 - p, and a budgeted
/// jammer must spend r slots (not 1) to erase one station's turn.  The
/// price is an r-fold stretch: wake-up completes within r(n - k + 1)
/// clean slots.

#include "protocols/protocol.hpp"

namespace wakeup::proto {

class RobustRoundRobinProtocol final : public Protocol, public ObliviousSchedule {
 public:
  RobustRoundRobinProtocol(std::uint32_t n, std::uint32_t r)
      : n_(n == 0 ? 1 : n), r_(r < 2 ? 2 : r) {}

  [[nodiscard]] std::string name() const override { return "robust_rr"; }
  [[nodiscard]] Requirements requirements() const override { return {}; }
  [[nodiscard]] std::unique_ptr<StationRuntime> make_runtime(StationId u,
                                                             Slot wake) const override;
  [[nodiscard]] const ObliviousSchedule* oblivious_schedule() const override { return this; }
  void schedule_block(StationId u, Slot wake, Slot from, std::uint64_t* out_words,
                      std::size_t n_words) const override;
  [[nodiscard]] bool words_are_cheap() const override { return true; }
  /// Like TDM, a pure function of the global clock: one wake class.
  [[nodiscard]] std::uint64_t wake_key(Slot wake) const override {
    (void)wake;
    return 0;
  }
  [[nodiscard]] std::uint64_t period() const override {
    return static_cast<std::uint64_t>(n_) * r_;
  }
  [[nodiscard]] Slot steady_from(Slot wake) const override {
    (void)wake;
    return 0;
  }

  [[nodiscard]] std::uint32_t n() const noexcept { return n_; }
  [[nodiscard]] std::uint32_t repetitions() const noexcept { return r_; }

 private:
  std::uint32_t n_;
  std::uint32_t r_;
};

}  // namespace wakeup::proto
