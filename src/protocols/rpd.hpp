#pragma once

/// \file rpd.hpp
/// Repeated Probability Decrease (Jurdziński–Stachowiak), as discussed in
/// paper §6: with a global clock, every awake station transmits in round σ
/// with probability 2^{-1-(σ mod ℓ)}.
///
/// ℓ = 2⌈log n⌉ gives O(log n) expected wake-up; when k is known,
/// ℓ = 2⌈log k⌉ matches the Kushilevitz–Mansour Ω(log k) lower bound.

#include "protocols/protocol.hpp"

namespace wakeup::proto {

class RpdProtocol final : public Protocol {
 public:
  /// `ell` is the probability cycle length (clamped >= 2); `seed` drives
  /// each station's private coins.
  RpdProtocol(unsigned ell, std::uint64_t seed, std::string label = "rpd")
      : ell_(ell < 2 ? 2 : ell), seed_(seed), label_(std::move(label)) {}

  [[nodiscard]] std::string name() const override { return label_; }
  [[nodiscard]] Requirements requirements() const override {
    Requirements r;
    r.randomized = true;
    return r;
  }
  [[nodiscard]] std::unique_ptr<StationRuntime> make_runtime(StationId u,
                                                             Slot wake) const override;

  [[nodiscard]] unsigned ell() const noexcept { return ell_; }

  /// ℓ = 2⌈log2 n⌉ (the n-parameterized variant).
  [[nodiscard]] static ProtocolPtr for_n(std::uint32_t n, std::uint64_t seed);
  /// ℓ = 2⌈log2 k⌉ (the k-parameterized variant, Scenario B knowledge).
  [[nodiscard]] static ProtocolPtr for_k(std::uint32_t k, std::uint64_t seed);

 private:
  unsigned ell_;
  std::uint64_t seed_;
  std::string label_;
};

}  // namespace wakeup::proto
