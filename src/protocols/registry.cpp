#include "protocols/registry.hpp"

#include <algorithm>
#include <stdexcept>

#include "protocols/adaptive_cw.hpp"
#include "protocols/aloha.hpp"
#include "protocols/backoff.hpp"
#include "protocols/local_doubling.hpp"
#include "protocols/robust_rr.hpp"
#include "protocols/round_robin.hpp"
#include "protocols/rpd.hpp"
#include "protocols/select_among_the_first.hpp"
#include "protocols/tree_splitting.hpp"
#include "protocols/wait_and_go.hpp"
#include "protocols/wakeup_matrix.hpp"
#include "protocols/wakeup_with_k.hpp"
#include "protocols/wakeup_with_s.hpp"

namespace wakeup::proto {

ProtocolPtr make_protocol_by_name(const ProtocolSpec& spec) {
  if (spec.name == "round_robin") {
    return std::make_shared<RoundRobinProtocol>(spec.n);
  }
  if (spec.name == "robust_rr") {
    // The repetition factor rides the s parameter (like wakeup_with_s's
    // sleep bound); 0 selects the r = 2 default.
    return std::make_shared<RobustRoundRobinProtocol>(spec.n, spec.s == 0 ? 2 : spec.s);
  }
  if (spec.name == "select_among_the_first") {
    comb::DoublingSchedule::Config config;
    config.n = spec.n;
    // The ladder only needs to reach the declared contention bound: levels
    // 2^1..2^ceil(log2 k) cover every |X| in [1, next_pow2(k)].  The old
    // k_max = n concatenated ~log n families regardless of k, which is what
    // blew the memory budget past n = 2^17.
    config.k_max = std::max<std::uint32_t>(2, std::min(spec.k, spec.n));
    config.kind = spec.family_kind;
    config.seed = spec.seed;
    config.c = spec.family_c;
    return std::make_shared<SelectAmongTheFirstProtocol>(spec.s,
                                                         comb::make_doubling_schedule(config));
  }
  if (spec.name == "wakeup_with_s") {
    return make_wakeup_with_s(spec.n, spec.s, spec.family_kind, spec.seed, spec.family_c);
  }
  if (spec.name == "wait_and_go") {
    return make_wait_and_go(spec.n, spec.k, spec.family_kind, spec.seed, spec.family_c);
  }
  if (spec.name == "wakeup_with_k") {
    return make_wakeup_with_k(spec.n, spec.k, spec.family_kind, spec.seed, spec.family_c);
  }
  if (spec.name == "wakeup_matrix") {
    return std::make_shared<WakeupMatrixProtocol>(spec.n, spec.matrix_c, spec.seed);
  }
  if (spec.name == "rpd_n") {
    return RpdProtocol::for_n(spec.n, spec.seed);
  }
  if (spec.name == "rpd_k") {
    return RpdProtocol::for_k(spec.k, spec.seed);
  }
  if (spec.name == "slotted_aloha") {
    return SlottedAlohaProtocol::for_k(spec.k, spec.seed);
  }
  if (spec.name == "local_doubling") {
    return make_local_doubling(spec.n, spec.k, spec.family_kind, spec.seed, spec.family_c);
  }
  if (spec.name == "tree_splitting") {
    return std::make_shared<TreeSplittingProtocol>(spec.seed);
  }
  if (spec.name == "binary_backoff") {
    return std::make_shared<BinaryBackoffProtocol>(/*initial_window=*/2,
                                                   /*max_window_log2=*/20, spec.seed);
  }
  if (spec.name == "adaptive_cw") {
    AdaptiveCwProtocol::Config config;
    config.k = std::max<std::uint32_t>(1, spec.k);
    config.seed = spec.seed;
    return std::make_shared<AdaptiveCwProtocol>(config);
  }
  throw std::invalid_argument("unknown protocol: " + spec.name);
}

const std::vector<std::string>& protocol_names() {
  static const std::vector<std::string> names = {
      "round_robin",   "robust_rr",
      "select_among_the_first",
      "wakeup_with_s", "wait_and_go",
      "wakeup_with_k", "wakeup_matrix",
      "rpd_n",         "rpd_k",
      "slotted_aloha", "local_doubling",
      "tree_splitting", "binary_backoff",
      "adaptive_cw",
  };
  return names;
}

bool is_protocol_name(const std::string& name) {
  const auto& names = protocol_names();
  return std::find(names.begin(), names.end(), name) != names.end();
}

ProtocolCapabilities protocol_capabilities(const std::string& name) {
  // A small probe instance answers every capability question; n/k are large
  // enough that no constructor degenerates (k <= n, families non-empty).
  ProtocolSpec spec;
  spec.name = name;
  spec.n = 64;
  spec.k = 4;
  spec.s = 0;
  spec.seed = 1;
  const ProtocolPtr probe = make_protocol_by_name(spec);
  const Requirements req = probe->requirements();
  const ObliviousSchedule* schedule = probe->oblivious_schedule();
  ProtocolCapabilities caps;
  caps.oblivious = schedule != nullptr;
  caps.cheap_words = schedule != nullptr && schedule->words_are_cheap();
  caps.randomized = req.randomized;
  caps.needs_k = req.needs_k;
  caps.needs_start_time = req.needs_start_time;
  caps.needs_collision_detection = req.needs_collision_detection;
  // Dynamic traffic re-contends per packet at arbitrary queue-head times,
  // which has no meaningful "known start slot", and the dynamic engines
  // deliver only the paper's no-CD feedback.
  caps.dynamic = !req.needs_start_time && !req.needs_collision_detection;
  return caps;
}

}  // namespace wakeup::proto
