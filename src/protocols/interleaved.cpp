#include "protocols/interleaved.hpp"

#include "util/math.hpp"
#include "util/rng.hpp"

namespace wakeup::proto {
namespace {

class InterleavedRuntime final : public StationRuntime {
 public:
  InterleavedRuntime(std::unique_ptr<StationRuntime> even, std::unique_ptr<StationRuntime> odd)
      : even_(std::move(even)), odd_(std::move(odd)) {}

  [[nodiscard]] bool transmits(Slot t) override {
    if (t % 2 == 0) return even_->transmits(t / 2);
    return odd_->transmits((t - 1) / 2);
  }

  void feedback(Slot t, ChannelFeedback fb) override {
    if (t % 2 == 0) {
      even_->feedback(t / 2, fb);
    } else {
      odd_->feedback((t - 1) / 2, fb);
    }
  }

 private:
  std::unique_ptr<StationRuntime> even_;
  std::unique_ptr<StationRuntime> odd_;
};

}  // namespace

Requirements InterleavedProtocol::requirements() const {
  const Requirements a = even_->requirements();
  const Requirements b = odd_->requirements();
  Requirements r;
  r.needs_global_clock = a.needs_global_clock || b.needs_global_clock;
  r.needs_start_time = a.needs_start_time || b.needs_start_time;
  r.needs_k = a.needs_k || b.needs_k;
  r.needs_collision_detection = a.needs_collision_detection || b.needs_collision_detection;
  r.randomized = a.randomized || b.randomized;
  return r;
}

std::unique_ptr<StationRuntime> InterleavedProtocol::make_runtime(StationId u, Slot wake) const {
  if (wake < 0) wake = 0;
  // First even slot >= wake is 2*ceil(wake/2); first odd is 2*floor(wake/2)+1.
  const Slot even_wake = (wake + 1) / 2;
  const Slot odd_wake = wake / 2;
  return std::make_unique<InterleavedRuntime>(even_->make_runtime(u, even_wake),
                                              odd_->make_runtime(u, odd_wake));
}

std::uint64_t InterleavedProtocol::wake_key(Slot wake) const {
  const Slot w0 = wake < 0 ? 0 : wake;
  // The component keys at the virtual wakes fully determine both component
  // emissions (their contract), hence the interleaved emission.  Hashing
  // keeps the key width fixed; a 64-bit collision between the handful of
  // classes a sweep cell ever sees is not a practical concern.
  return util::hash_words({0x494c56ULL /* "ILV" */, even_sched_->wake_key((w0 + 1) / 2),
                           odd_sched_->wake_key(w0 / 2)});
}

std::uint64_t InterleavedProtocol::period() const {
  const std::uint64_t p = util::lcm_or_zero(even_sched_->period(), odd_sched_->period());
  return p > ~std::uint64_t{0} / 2 ? 0 : 2 * p;
}

Slot InterleavedProtocol::steady_from(Slot wake) const {
  const Slot w0 = wake < 0 ? 0 : wake;
  // Even-parity global slots 2v are steady once v >= the even component's
  // steady point; odd-parity slots 2v+1 likewise for the odd component.
  const Slot even_steady = 2 * even_sched_->steady_from((w0 + 1) / 2);
  const Slot odd_steady = 2 * odd_sched_->steady_from(w0 / 2) + 1;
  return even_steady > odd_steady ? even_steady : odd_steady;
}

void InterleavedProtocol::schedule_block(StationId u, Slot wake, Slot from,
                                         std::uint64_t* out_words, std::size_t n_words) const {
  const Slot w0 = wake < 0 ? 0 : wake;
  const Slot even_wake = (w0 + 1) / 2;  // virtual wakes, as in make_runtime
  const Slot odd_wake = w0 / 2;
  for (std::size_t w = 0; w < n_words; ++w) {
    const Slot b = from + static_cast<Slot>(64 * w);
    // The 32 even-parity global slots in [b, b+64) map to virtual slots
    // (b+1)/2 ... of the even component; the 32 odd-parity ones to
    // b/2 ... of the odd component.  Fetch one virtual word from each and
    // interleave the low halves.
    std::uint64_t even_bits = 0;
    std::uint64_t odd_bits = 0;
    even_sched_->schedule_block(u, even_wake, (b + 1) / 2, &even_bits, 1);
    odd_sched_->schedule_block(u, odd_wake, b / 2, &odd_bits, 1);
    const std::uint64_t e = util::spread_even_bits32(even_bits);
    const std::uint64_t o = util::spread_even_bits32(odd_bits);
    out_words[w] = b % 2 == 0 ? (e | (o << 1)) : (o | (e << 1));
  }
}

}  // namespace wakeup::proto
