#include "protocols/interleaved.hpp"

namespace wakeup::proto {
namespace {

class InterleavedRuntime final : public StationRuntime {
 public:
  InterleavedRuntime(std::unique_ptr<StationRuntime> even, std::unique_ptr<StationRuntime> odd)
      : even_(std::move(even)), odd_(std::move(odd)) {}

  [[nodiscard]] bool transmits(Slot t) override {
    if (t % 2 == 0) return even_->transmits(t / 2);
    return odd_->transmits((t - 1) / 2);
  }

  void feedback(Slot t, ChannelFeedback fb) override {
    if (t % 2 == 0) {
      even_->feedback(t / 2, fb);
    } else {
      odd_->feedback((t - 1) / 2, fb);
    }
  }

 private:
  std::unique_ptr<StationRuntime> even_;
  std::unique_ptr<StationRuntime> odd_;
};

}  // namespace

Requirements InterleavedProtocol::requirements() const {
  const Requirements a = even_->requirements();
  const Requirements b = odd_->requirements();
  Requirements r;
  r.needs_global_clock = a.needs_global_clock || b.needs_global_clock;
  r.needs_start_time = a.needs_start_time || b.needs_start_time;
  r.needs_k = a.needs_k || b.needs_k;
  r.needs_collision_detection = a.needs_collision_detection || b.needs_collision_detection;
  r.randomized = a.randomized || b.randomized;
  return r;
}

std::unique_ptr<StationRuntime> InterleavedProtocol::make_runtime(StationId u, Slot wake) const {
  if (wake < 0) wake = 0;
  // First even slot >= wake is 2*ceil(wake/2); first odd is 2*floor(wake/2)+1.
  const Slot even_wake = (wake + 1) / 2;
  const Slot odd_wake = wake / 2;
  return std::make_unique<InterleavedRuntime>(even_->make_runtime(u, even_wake),
                                              odd_->make_runtime(u, odd_wake));
}

}  // namespace wakeup::proto
