#include "protocols/aloha.hpp"

#include "util/rng.hpp"

namespace wakeup::proto {
namespace {

class AlohaRuntime final : public StationRuntime {
 public:
  AlohaRuntime(double p, util::Rng rng) : p_(p), rng_(rng) {}

  [[nodiscard]] bool transmits(Slot t) override {
    (void)t;
    return rng_.bernoulli(p_);
  }

 private:
  double p_;
  util::Rng rng_;
};

/// Dynamic-traffic ALOHA: memoryless per slot, but one rng stream per
/// station per trial — successive packets continue the stream instead of
/// reseeding, which keeps the trial a deterministic function of (seed, u).
class AlohaStation final : public DynamicStation {
 public:
  AlohaStation(double p, util::Rng rng) : p_(p), rng_(rng) {}

  void packet_start(Slot start) override { (void)start; }

  [[nodiscard]] bool transmits(Slot t) override {
    (void)t;
    return rng_.bernoulli(p_);
  }

 private:
  double p_;
  util::Rng rng_;
};

}  // namespace

std::unique_ptr<StationRuntime> SlottedAlohaProtocol::make_runtime(StationId u, Slot wake) const {
  util::Rng rng(util::hash_words({seed_, 0x414c4f4841ULL /* "ALOHA" */, u,
                                  static_cast<std::uint64_t>(wake)}));
  return std::make_unique<AlohaRuntime>(p_, rng);
}

std::unique_ptr<DynamicStation> SlottedAlohaProtocol::make_dynamic_station(StationId u) const {
  util::Rng rng(util::hash_words({seed_, 0x44414c4f4841ULL /* "DALOHA" */, u}));
  return std::make_unique<AlohaStation>(p_, rng);
}

ProtocolPtr SlottedAlohaProtocol::for_k(std::uint32_t k, std::uint64_t seed) {
  return std::make_shared<SlottedAlohaProtocol>(1.0 / static_cast<double>(k < 1 ? 1 : k), seed);
}

}  // namespace wakeup::proto
