#pragma once

/// \file wakeup_with_k.hpp
/// `wakeup_with_k` (paper §4): the Scenario B algorithm — round-robin
/// interleaved with `wait_and_go`.  Θ(k log(n/k) + 1), optimal.

#include "combinatorics/builders.hpp"
#include "protocols/protocol.hpp"

namespace wakeup::proto {

/// Builds interleave(round_robin(n), wait_and_go(n, k)).
[[nodiscard]] ProtocolPtr make_wakeup_with_k(std::uint32_t n, std::uint32_t k,
                                             comb::FamilyKind kind, std::uint64_t seed,
                                             double family_c = comb::kDefaultRandomFamilyC);

}  // namespace wakeup::proto
