#pragma once

/// \file registry.hpp
/// Name-based protocol construction for benches, examples and sweeps.

#include <string>
#include <vector>

#include "combinatorics/builders.hpp"
#include "protocols/protocol.hpp"

namespace wakeup::proto {

/// Everything any registered protocol might need.  Fields irrelevant to a
/// given protocol are ignored.
struct ProtocolSpec {
  std::string name;                 ///< one of protocol_names()
  std::uint32_t n = 0;              ///< universe size (always required)
  std::uint32_t k = 2;              ///< contention bound (Scenario B knowledge)
  Slot s = 0;                       ///< known start slot (Scenario A knowledge)
  std::uint64_t seed = 1;           ///< randomized components and families
  comb::FamilyKind family_kind = comb::FamilyKind::kRandomized;
  double family_c = comb::kDefaultRandomFamilyC;
  unsigned matrix_c = 2;            ///< Scenario C pacing constant
};

/// Builds the named protocol.  Throws std::invalid_argument for unknown
/// names.  Registered names:
///   round_robin, select_among_the_first, wakeup_with_s, wait_and_go,
///   wakeup_with_k, wakeup_matrix, rpd_n, rpd_k, slotted_aloha,
///   local_doubling, tree_splitting, binary_backoff
[[nodiscard]] ProtocolPtr make_protocol_by_name(const ProtocolSpec& spec);

/// All registered names, in a stable order.
[[nodiscard]] const std::vector<std::string>& protocol_names();

}  // namespace wakeup::proto
