#pragma once

/// \file registry.hpp
/// Name-based protocol construction for benches, examples and sweeps.

#include <string>
#include <vector>

#include "combinatorics/builders.hpp"
#include "protocols/protocol.hpp"

namespace wakeup::proto {

/// Everything any registered protocol might need.  Fields irrelevant to a
/// given protocol are ignored.
struct ProtocolSpec {
  std::string name;                 ///< one of protocol_names()
  std::uint32_t n = 0;              ///< universe size (always required)
  std::uint32_t k = 2;              ///< contention bound (Scenario B knowledge)
  Slot s = 0;                       ///< known start slot (Scenario A knowledge)
  std::uint64_t seed = 1;           ///< randomized components and families
  comb::FamilyKind family_kind = comb::FamilyKind::kRandomized;
  double family_c = comb::kDefaultRandomFamilyC;
  unsigned matrix_c = 2;            ///< Scenario C pacing constant
};

/// Builds the named protocol.  Throws std::invalid_argument for unknown
/// names.  Registered names:
///   round_robin, select_among_the_first, wakeup_with_s, wait_and_go,
///   wakeup_with_k, wakeup_matrix, rpd_n, rpd_k, slotted_aloha,
///   local_doubling, tree_splitting, binary_backoff, adaptive_cw
[[nodiscard]] ProtocolPtr make_protocol_by_name(const ProtocolSpec& spec);

/// All registered names, in a stable order.
[[nodiscard]] const std::vector<std::string>& protocol_names();

/// True iff `name` is one of protocol_names().
[[nodiscard]] bool is_protocol_name(const std::string& name);

/// What a registered protocol can do — queried from a small probe instance,
/// so the answers track the implementations instead of a hand-maintained
/// table.  `wakeup_cli list` prints these as capability columns and the
/// sweep grid validation (exp/sweep_spec.cpp) consults them to reject
/// engine/protocol combinations with a friendly message instead of a
/// mid-sweep throw.
struct ProtocolCapabilities {
  bool oblivious = false;      ///< exposes ObliviousSchedule (word-parallel engines apply)
  bool cheap_words = false;    ///< oblivious and words_are_cheap()
  bool randomized = false;     ///< rebuilt per trial by the sweep harness
  bool needs_k = false;        ///< Scenario B knowledge
  bool needs_start_time = false;  ///< Scenario A knowledge
  bool needs_collision_detection = false;  ///< beyond the paper's model
  bool dynamic = false;  ///< usable under dynamic traffic (arrival= axes)
};

/// Capabilities of the named protocol.  Throws std::invalid_argument for
/// unknown names (same contract as make_protocol_by_name).
[[nodiscard]] ProtocolCapabilities protocol_capabilities(const std::string& name);

}  // namespace wakeup::proto
