#pragma once

/// \file aloha.hpp
/// Slotted ALOHA with a fixed transmission probability — the classic
/// randomized baseline (Abramson [1]); needs k to pick p = 1/k well.

#include "protocols/protocol.hpp"

namespace wakeup::proto {

class SlottedAlohaProtocol final : public Protocol {
 public:
  /// Every awake station transmits each slot with probability `p`.
  SlottedAlohaProtocol(double p, std::uint64_t seed)
      : p_(p <= 0.0 ? 0.5 : (p > 1.0 ? 1.0 : p)), seed_(seed) {}

  [[nodiscard]] std::string name() const override { return "slotted_aloha"; }
  [[nodiscard]] Requirements requirements() const override {
    Requirements r;
    r.needs_k = true;  // p is tuned to the contention bound
    r.randomized = true;
    return r;
  }
  [[nodiscard]] std::unique_ptr<StationRuntime> make_runtime(StationId u,
                                                             Slot wake) const override;

  /// Dynamic traffic: memoryless re-contention, one rng stream per trial.
  [[nodiscard]] std::unique_ptr<DynamicStation> make_dynamic_station(StationId u) const override;

  [[nodiscard]] double p() const noexcept { return p_; }

  /// The standard tuning p = 1/k.
  [[nodiscard]] static ProtocolPtr for_k(std::uint32_t k, std::uint64_t seed);

 private:
  double p_;
  std::uint64_t seed_;
};

}  // namespace wakeup::proto
