#pragma once

/// \file select_among_the_first.hpp
/// `select_among_the_first` (paper §3, Scenario A component).
///
/// Only stations woken exactly at the (globally known) start slot s
/// participate; everyone woken later stays silent forever.  Participants
/// transmit according to the concatenation of (n,2^j)-selective families,
/// j = 1, 2, ... — since the participant set X is frozen (all woke at s),
/// the family whose selectivity window contains |X| isolates a station
/// within O(k + k log(n/k)) slots.

#include "combinatorics/doubling_schedule.hpp"
#include "protocols/protocol.hpp"

namespace wakeup::proto {

class SelectAmongTheFirstProtocol final : public Protocol, public ObliviousSchedule {
 public:
  /// `schedule` must be the doubling concatenation built for universe n;
  /// `s` is the known first wake slot.
  SelectAmongTheFirstProtocol(Slot s, comb::DoublingSchedulePtr schedule)
      : s_(s), schedule_(std::move(schedule)) {}

  [[nodiscard]] std::string name() const override { return "select_among_the_first"; }
  [[nodiscard]] Requirements requirements() const override {
    Requirements r;
    r.needs_start_time = true;
    return r;
  }
  [[nodiscard]] std::unique_ptr<StationRuntime> make_runtime(StationId u,
                                                             Slot wake) const override;
  [[nodiscard]] const ObliviousSchedule* oblivious_schedule() const override { return this; }
  void schedule_block(StationId u, Slot wake, Slot from, std::uint64_t* out_words,
                      std::size_t n_words) const override;
  /// Emission depends on the wake only through participation (wake == s):
  /// two classes.  Participants repeat the doubling concatenation (period
  /// z) from s onward; non-participants are all-zero (trivially periodic).
  [[nodiscard]] std::uint64_t wake_key(Slot wake) const override { return wake == s_ ? 1 : 0; }
  [[nodiscard]] std::uint64_t period() const override { return schedule_->period(); }
  [[nodiscard]] Slot steady_from(Slot wake) const override {
    (void)wake;
    return s_;
  }

  [[nodiscard]] Slot s() const noexcept { return s_; }
  [[nodiscard]] const comb::DoublingSchedule& schedule() const noexcept { return *schedule_; }

 private:
  Slot s_;
  comb::DoublingSchedulePtr schedule_;
};

}  // namespace wakeup::proto
