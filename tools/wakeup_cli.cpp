/// wakeup_cli — run any registered protocol against a generated or replayed
/// wake pattern, with optional trace and CSV emission.
///
/// Usage:
///   wakeup_cli run  --protocol=wakeup_matrix --n=1024 --k=16
///                   [--pattern=staggered|simultaneous|uniform|batched|poisson|exp_spread]
///                   [--s=0] [--seed=1] [--trials=1] [--trace] [--cd]
///                   [--engine=auto|interpret|batch] [--threads=N]
///                   [--channels=4] [--mc=adapter|striped_rr|group_wag|random_rpd]
///                   [--per-trial-csv=trials.csv]
///                   [--pattern-file=arrivals.csv] [--save-pattern=out.csv]
///                   [--arrival=poisson:0.2 --horizon=2048]  (dynamic traffic)
///   wakeup_cli sweep --preset=figure-scenario-b --out=sweep_b [--resume]
///   wakeup_cli sweep --protocols=wakeup_with_k,round_robin --n=2^10..2^13 --k=1,8,64
///   wakeup_cli sweep --preset=dynamic-throughput   # sustained-load grid
///   wakeup_cli sweep --preset=figure-scenario-b --out=sweep_b --workers=4
///   wakeup_cli sweep merge --out=sweep_b           # shards -> report
///   wakeup_cli adversary --protocol=round_robin --n=128 --k=16 [--seed=1]
///   wakeup_cli certify --n=16 [--c=2] [--seed=1]          # waking-matrix seed search
///   wakeup_cli list                                       # protocols + capabilities
///
/// Exit code 0 on success (wake-up achieved in every trial), 1 otherwise.

#include <algorithm>
#include <iostream>
#include <limits>
#include <memory>
#include <mutex>

#include "combinatorics/waking_search.hpp"
#include "mac/pattern_io.hpp"
#include "util/args.hpp"
#include "util/table.hpp"
#include "wakeup/wakeup.hpp"

using namespace wakeup;

namespace {

void print_usage() {
  std::cout <<
      R"(wakeup_cli — contention resolution on a multiple access channel

commands:
  run        simulate a protocol against a wake pattern
  sweep      run a declarative parameter grid (presets or --protocols/--n/--k axes)
  adversary  play the Theorem 2.1 element-swap game against a protocol
  certify    search for a certified waking-matrix seed (small n)
  list       list registered protocols with capability columns

common options:
  --protocol=<name>      (see `list`; default wakeup_matrix)
  --n=<int>              universe size (default 1024)
  --k=<int>              contention bound / pattern size (default 8)
  --s=<int>              known start slot for Scenario A protocols (default 0)
  --seed=<int>           randomness seed (default 1)
run options:
  --pattern=<kind>       staggered|simultaneous|uniform|batched|poisson|exp_spread
  --pattern-file=<csv>   replay arrivals from "station,wake" rows instead
  --save-pattern=<csv>   write the generated pattern out
  --trials=<int>         independent trials (default 1)
  --trace                print the slot-by-slot timeline (single trial)
  --cd                   collision-detection feedback (for tree_splitting)
  --max-slots=<int>      slot budget (default: auto)
  --engine=<sel>         auto|interpret|batch (default auto)
  --threads=<int>        worker threads for multi-trial runs (default: one
                         per hardware thread via the shared pool; 0 = inline)
  --channels=<int>       C-channel network (default 1 = the paper's model)
  --mc=<strategy>        adapter|striped_rr|group_wag|random_rpd
                         (default adapter: --protocol embedded on channel 0)
  --per-trial-csv=<csv>  stream one result row per trial (no accumulation)
  --arrival=<spec>       dynamic traffic: per-station packet queues fed by
                         poisson:RATE | bursty:RATE:SWITCH | pareto:ALPHA[:RATE]
                         (RATE = offered load, packets/slot across k stations)
  --horizon=<int>        slots per dynamic trial (default 2048)
  --arrival-file=<csv>   replay a fixed "station,slot" packet trace instead
                         (one row per packet; stations may repeat)
  --noise=<spec>         feedback noise: iid:P | bursty:P:SWITCH (mac/impairment
                         grammar minus the "noise:" prefix; "none" = clean)
  --jam=<spec>           budgeted jamming: budget:J[:front|spread|random|adversarial]
                         (adversarial searches the worst placement; static only)
  --faults=<spec>        station faults: crash:F[:slot] | byzantine:F
                         (dynamic traffic only); clauses compose, e.g.
                         --noise=iid:0.01 --jam=budget:16
  --energy=<model>       per-station energy accounting: off | listen:all |
                         listen:until_woken (identical numbers from every
                         engine; prints the station mean/max)
  --metrics=<json>       write the obs metrics registry snapshot (counters,
                         gauges, histograms; deterministic key order)
  --trace=<json>         with a file path: write a Chrome trace-event /
                         Perfetto file (slot timeline as instant events);
                         bare --trace keeps the classic stdout print

sweep options:
  --preset=<name>        figure-scenario-a/b/c, crossover, multichannel-scaling,
                         smoke, frontier-scaling, dynamic-throughput,
                         robustness-curves (grid flags below override preset
                         axes)
  --protocols=<a,b,..>   protocol axis: registry names and/or striped_rr,
                         group_wag, random_rpd
  --n=<axis>             axis grammar: N, 2^E, doubling range A..B, commas
                         (e.g. --n=2^10..2^17 --k=1,8,64)
  --k=<axis>  --channels=<axis>
  --pattern=<a,b,..>     generator kinds plus `adversarial` (per-cell
                         hardest-pattern search, sim/adversary)
  --arrival=<a,b,..>     dynamic-traffic axis (replaces --pattern), e.g.
                         --arrival=poisson:0.1,bursty:0.5:0.05,pareto:1.5
  --horizon=<int>        slots per dynamic trial (default 2048)
  --noise=<a,b,..> --jam=<a,b,..> --faults=<a,b,..>
                         impairment axis: each flag is a comma list of clause
                         values ("none" allowed); the axis is their cross
                         product with clauses joined by '+', so
                         --noise=none,iid:0.05 --jam=none,budget:16 sweeps the
                         clean channel, each impairment alone, and both
  --engine=<a,b,..>      auto|interpret|batch (axis)
  --trials=<int>         Monte-Carlo trials per cell
  --out=<dir>            output directory (manifest.jsonl, report.csv/json;
                         default sweep_out)
  --resume               skip cells already in the manifest; the final
                         report is byte-identical to an uninterrupted run
  --threads=<int>        pool size for cell/trial parallelism (default:
                         shared pool; 0 = inline)
  --sharding=<sel>       auto|cells|trials
  --ci-resamples=<int>   bootstrap resamples per cell (default 2000)
  --max-cells=<int>      stop after N pending cells (CI/kill simulation)
  --per-trial-csv=<csv>  stream one row per trial across all cells
  --quiet                suppress per-cell progress lines
  --progress=<N>         heartbeat every N completed cells: completed/total,
                         cells/sec, ETA (off by default; workers prefix
                         their lines with [worker W])
  --workers=<N>          fork N cooperating worker processes against --out:
                         cells are leased through the claim ledger
                         (claims.jsonl), results land in per-worker shards
                         (manifest-<w>.jsonl), and the driver merges them
                         into the canonical report on exit
  --worker-id=<W>        run THIS process as worker W of an externally
                         launched fleet (cluster schedulers; every worker
                         shares --out on one filesystem); drain, then run
                         `sweep merge --out=<dir>` once to emit the report
  --lease-cells=<N>      cells leased per claim (default 8)
  --lease-ttl=<ms>       lease duration before a crashed worker's cells
                         become stealable (default 10000)
  --metrics=<json>       write the obs registry snapshot after the sweep
                         (cache hit rates, cell wall times, ledger steals;
                         fleet workers shard to <out>/metrics-<w>.json)
  --trace=<json>         write a Perfetto trace: one duration event per
                         cell; fleet workers get their own process row and
                         the driver merges <out>/trace-<w>.json shards here

sweep merge:
  wakeup_cli sweep merge --out=<dir>
                         merge every manifest shard in <dir> and write the
                         report (byte-identical to a single-process run);
                         exit 1 while cells are still missing

note: --save-pattern generates one pattern up front, saves it, and replays
it for every trial (use --pattern-file to re-run it later).
)";
}

/// Composes `run`'s --noise/--jam/--faults flags into one impairment spec:
/// each flag contributes its clause ("none" and absent flags contribute
/// nothing), clauses joined by '+' through the mac/impairment grammar.
mac::ImpairmentSpec parse_impairment_flags(const util::Args& args) {
  std::string text;
  const auto add = [&text](const char* prefix, const std::string& value) {
    if (value.empty() || value == "none") return;
    if (!text.empty()) text += '+';
    text += prefix;
    text += value;
  };
  if (args.has("noise")) add("noise:", args.get("noise"));
  if (args.has("jam")) add("jam:", args.get("jam"));
  if (args.has("faults")) add("", args.get("faults"));
  if (text.empty()) return {};
  return mac::ImpairmentSpec::parse(text);
}

/// The run commands' --energy flag (off when absent).
sim::EnergyModel parse_energy_flag(const util::Args& args) {
  if (!args.has("energy")) return sim::EnergyModel::kOff;
  return sim::parse_energy_model(args.get("energy"));
}

/// The --metrics=FILE flag: enables the registry and returns the path ("" =
/// flag absent).  Enabling must precede the simulation so the counters see
/// every event.
std::string metrics_flag(const util::Args& args) {
  if (!args.has("metrics")) return "";
  const std::string path = args.get("metrics");
  if (path.empty()) throw std::invalid_argument("--metrics needs a file path");
  obs::set_enabled(true);
  return path;
}

/// The run command's --trace flag is overloaded: bare/boolean values keep
/// the classic stdout timeline print, anything else is a Perfetto output
/// path.  Returns the path ("" = print mode or absent).
std::string trace_path_flag(const util::Args& args) {
  if (!args.has("trace") || args.get_flag("trace")) return "";
  return args.get("trace");
}

/// Bounded integer flag shared by every command: a negative value would
/// wrap through the uint64 casts into a ~2^64 trial count / loop bound.
std::int64_t bounded_flag(const util::Args& args, const char* key, std::int64_t fallback,
                          std::int64_t lo, std::int64_t hi) {
  const std::int64_t v = args.get_int(key, fallback);
  if (v < lo || v > hi) {
    throw std::invalid_argument("--" + std::string(key) + " must be in [" + std::to_string(lo) +
                                ", " + std::to_string(hi) + "]");
  }
  return v;
}

/// The --threads flag, shared by run/sweep: builds a dedicated pool
/// (0 = inline).  Returns nullptr when the flag is absent — callers fall
/// back to the process-wide shared pool.
std::unique_ptr<util::ThreadPool> make_own_pool(const util::Args& args) {
  if (!args.has("threads")) return nullptr;
  const std::int64_t threads = bounded_flag(args, "threads", 0, 0, 1024);
  return std::make_unique<util::ThreadPool>(static_cast<std::size_t>(threads));
}

mac::patterns::Kind parse_kind(const std::string& label) {
  for (const auto kind : mac::patterns::all_kinds()) {
    if (mac::patterns::kind_name(kind) == label) return kind;
  }
  throw std::invalid_argument("unknown pattern kind: " + label);
}

const char* yn(bool v) { return v ? "yes" : "-"; }

int cmd_list() {
  // The capability columns are the same answers exp/sweep_spec.cpp
  // validates grids against, so what this table says runs, runs.
  util::ConsoleTable table({"protocol", "oblivious", "cheap-words", "randomized", "needs-k",
                            "needs-s", "needs-cd", "dynamic"});
  for (const auto& name : proto::protocol_names()) {
    const auto caps = proto::protocol_capabilities(name);
    table.cell(name)
        .cell(yn(caps.oblivious))
        .cell(yn(caps.cheap_words))
        .cell(yn(caps.randomized))
        .cell(yn(caps.needs_k))
        .cell(yn(caps.needs_start_time))
        .cell(yn(caps.needs_collision_detection))
        .cell(yn(caps.dynamic));
    table.end_row();
  }
  table.print(std::cout);
  std::cout << "\nmultichannel strategies (sweep --protocols / run --mc): ";
  bool first = true;
  for (const auto& name : exp::mc_strategy_names()) {
    std::cout << (first ? "" : ", ") << name;
    first = false;
  }
  std::cout << ", adapter (any registry protocol at --channels > 1)\n"
            << "oblivious protocols batch word-parallel; non-oblivious ones run on the\n"
            << "slot interpreter (engine=batch rejects them at grid validation).\n"
            << "`dynamic` marks protocols that re-contend per packet under sustained\n"
            << "load (--arrival); static-only ones are rejected on arrival-axis grids.\n";
  return 0;
}

/// `sweep merge --out=dir`: standalone deterministic merge for cluster
/// launchers whose workers ran with --worker-id on a shared filesystem.
int cmd_sweep_merge(const util::Args& args) {
  const std::string out_dir = args.get("out", "sweep_out");
  const exp::SweepOutcome outcome = exp::merge_sweep(out_dir);
  std::cout << "cells: " << outcome.cells_total << " total, " << outcome.cells_resumed
            << " merged, " << outcome.cells_remaining << " remaining\n";
  if (!outcome.completed) {
    std::cout << "grid incomplete — run the remaining cells (more workers, or --resume) "
                 "before merging\n";
    return 1;
  }
  std::cout << "report: " << outcome.csv_path << "  " << outcome.json_path << "\n";
  return 0;
}

int cmd_sweep(const util::Args& args) {
  if (args.positional().size() > 1 && args.positional()[1] == "merge") {
    return cmd_sweep_merge(args);
  }
  exp::SweepSpec spec =
      args.has("preset") ? exp::make_preset(args.get("preset")) : exp::SweepSpec{};
  if (args.has("protocols")) spec.protocols = exp::split_list(args.get("protocols"));
  if (args.has("n")) spec.ns = exp::parse_axis_u32(args.get("n"));
  if (args.has("k")) spec.ks = exp::parse_axis_u32(args.get("k"));
  if (args.has("channels")) spec.channels = exp::parse_axis_u32(args.get("channels"));
  if (args.has("pattern")) {
    spec.patterns.clear();
    for (const auto& label : exp::split_list(args.get("pattern"))) {
      spec.patterns.push_back(exp::parse_pattern(label));
    }
  }
  if (args.has("engine")) {
    spec.engines.clear();
    for (const auto& label : exp::split_list(args.get("engine"))) {
      spec.engines.push_back(exp::parse_engine(label));
    }
  }
  if (args.has("arrival")) spec.arrivals = exp::parse_arrival_axis(args.get("arrival"));
  if (args.has("noise") || args.has("jam") || args.has("faults")) {
    // Impairment axis: each flag carries a comma list of clause values; the
    // axis is their cross product with the clauses of one combination joined
    // by '+' ("none" in a list keeps the clause absent, so mixed lists build
    // L-shaped grids: clean + each ladder alone).
    const auto clause_values = [&args](const char* key, const char* prefix) {
      std::vector<std::string> out;
      if (!args.has(key)) return out = {""}, out;
      for (const auto& item : exp::split_list(args.get(key))) {
        out.push_back(item == "none" ? "" : prefix + item);
      }
      if (out.empty()) throw std::invalid_argument("--" + std::string(key) + " is empty");
      return out;
    };
    const auto noises = clause_values("noise", "noise:");
    const auto jams = clause_values("jam", "jam:");
    const auto faults = clause_values("faults", "");
    spec.impairments.clear();
    for (const auto& nz : noises) {
      for (const auto& jm : jams) {
        for (const auto& fl : faults) {
          std::string text;
          for (const std::string* clause : {&nz, &jm, &fl}) {
            if (clause->empty()) continue;
            if (!text.empty()) text += '+';
            text += *clause;
          }
          spec.impairments.push_back(text.empty() ? "none" : text);
        }
      }
    }
  }
  if (args.has("horizon")) {
    const std::int64_t horizon = args.get_int("horizon", 2048);
    if (horizon < 1) throw std::invalid_argument("--horizon must be >= 1");
    spec.horizon = horizon;
  }
  if (args.has("trials")) {
    spec.trials = static_cast<std::uint64_t>(bounded_flag(args, "trials", 64, 1, 1'000'000'000));
  }
  if (args.has("seed")) spec.base_seed = static_cast<std::uint64_t>(args.get_int("seed", 1));
  if (args.has("s")) {
    spec.s = bounded_flag(args, "s", 0, 0, std::numeric_limits<std::int64_t>::max());
  }
  if (args.has("max-slots")) spec.sim.max_slots = args.get_int("max-slots", 0);

  exp::SweepOptions options;
  options.out_dir = args.get("out", "sweep_out");
  options.resume = args.get_flag("resume");
  options.ci_resamples =
      static_cast<std::uint64_t>(bounded_flag(args, "ci-resamples", 2000, 0, 1'000'000));
  options.max_cells =
      static_cast<std::uint64_t>(bounded_flag(args, "max-cells", 0, 0, 1'000'000'000));
  options.progress = !args.get_flag("quiet");
  if (args.has("progress")) {
    // --progress=N: heartbeat (completed/total, cells/sec, ETA) every N
    // cells; bare --progress means every cell.
    options.heartbeat_cells =
        static_cast<std::uint64_t>(bounded_flag(args, "progress", 1, 1, 1'000'000'000));
  }
  options.lease_cells =
      static_cast<std::uint64_t>(bounded_flag(args, "lease-cells", 8, 1, 1'000'000'000));
  options.lease_ttl_ms =
      static_cast<std::uint64_t>(bounded_flag(args, "lease-ttl", 10000, 1, 86'400'000));
  options.metrics_path = metrics_flag(args);
  if (args.has("trace")) {
    options.trace_path = args.get("trace");
    if (options.trace_path.empty()) {
      throw std::invalid_argument("sweep --trace needs a file path (there is no timeline print)");
    }
    obs::set_trace_enabled(true);
    obs::trace_set_process(0, "sweep");
  }
  // The registry also powers the --progress heartbeat extras (cache
  // hit-rate, lease steals); enable it here — before the fleet forks, so
  // worker processes inherit the flag.
  if (args.has("progress")) obs::set_enabled(true);
  const std::int64_t workers = bounded_flag(args, "workers", 0, 0, 1024);
  if (args.has("worker-id")) {
    if (workers > 0) {
      throw std::invalid_argument(
          "--workers forks a local fleet, --worker-id joins an externally launched one — "
          "pick one");
    }
    options.worker_id =
        static_cast<std::int32_t>(bounded_flag(args, "worker-id", 0, 0, 1'000'000));
  }

  // Fleet mode forks before this process owns any threads (fork carries
  // only the calling thread), so it must run before --threads builds a
  // pool and before any sink opens.
  if (workers > 0) {
    if (args.has("per-trial-csv")) {
      throw std::invalid_argument(
          "--per-trial-csv cannot serialize rows across worker processes");
    }
    const auto worker_threads =
        static_cast<std::size_t>(bounded_flag(args, "threads", 0, 0, 1024));
    const exp::SweepOutcome outcome = exp::run_sweep_fleet(
        spec, options, static_cast<std::uint32_t>(workers), worker_threads);
    std::cout << "workers: " << workers << "\ncells: " << outcome.cells_total << " total, "
              << outcome.cells_resumed << " merged, " << outcome.cells_remaining
              << " remaining\n";
    if (!outcome.completed) {
      std::cout << "sweep interrupted by --max-cells; re-run with --resume to finish\n";
      return 1;
    }
    std::cout << "report: " << outcome.csv_path << "  " << outcome.json_path << "\n";
    if (!options.metrics_path.empty()) std::cout << "[metrics] " << options.metrics_path << "\n";
    if (!options.trace_path.empty()) std::cout << "[trace] " << options.trace_path << "\n";
    return 0;
  }
  const std::string sharding = args.get("sharding", "auto");
  if (sharding == "cells") {
    options.sharding = exp::Sharding::kCells;
  } else if (sharding == "trials") {
    options.sharding = exp::Sharding::kTrials;
  } else if (sharding != "auto") {
    throw std::invalid_argument("unknown sharding '" + sharding +
                                "' (one of: auto, cells, trials)");
  }

  std::unique_ptr<sim::TrialCsvSink> csv;
  if (args.has("per-trial-csv")) {
    // The sink may target the (not yet created) output directory.
    if (!util::ensure_directory(options.out_dir)) {
      throw std::runtime_error("cannot create output directory " + options.out_dir);
    }
    csv = std::make_unique<sim::TrialCsvSink>(args.get("per-trial-csv"));
    options.trial_csv = csv.get();
  }
  const std::unique_ptr<util::ThreadPool> own_pool = make_own_pool(args);
  if (own_pool) options.pool = own_pool.get();

  const exp::SweepOutcome outcome = exp::run_sweep(spec, options);
  std::cout << "cells: " << outcome.cells_total << " total, " << outcome.cells_run << " run, "
            << outcome.cells_resumed << " resumed, " << outcome.cells_remaining
            << " remaining\n"
            << "manifest: " << outcome.manifest_path << "\n";
  if (csv) std::cout << "[per-trial csv] " << csv->path() << " (" << csv->rows() << " rows)\n";
  if (options.worker_id >= 0) {
    // One worker of an externally launched fleet: no report here — the
    // launcher merges once the grid is drained.
    if (!outcome.drained) {
      std::cout << "worker " << options.worker_id
                << " exited with cells outstanding; run more workers (or re-run) to drain\n";
      return 1;
    }
    std::cout << "grid drained; emit the report with `wakeup_cli sweep merge --out="
              << options.out_dir << "`\n";
    return 0;
  }
  if (!outcome.completed) {
    std::cout << "sweep interrupted by --max-cells; re-run with --resume to finish\n";
    return 1;
  }
  std::cout << "report: " << outcome.csv_path << "  " << outcome.json_path << "\n";
  if (!options.metrics_path.empty()) std::cout << "[metrics] " << options.metrics_path << "\n";
  if (!options.trace_path.empty()) std::cout << "[trace] " << options.trace_path << "\n";
  std::uint64_t failures = 0;
  for (const auto& record : outcome.records) failures += record.stats.failures;
  std::cout << "trials with budget exhaustion across the grid: " << failures << "\n";
  return 0;
}

proto::ProtocolPtr build_protocol(const util::Args& args, std::uint64_t seed) {
  proto::ProtocolSpec spec;
  spec.name = args.get("protocol", "wakeup_matrix");
  spec.n = static_cast<std::uint32_t>(args.get_int("n", 1024));
  spec.k = static_cast<std::uint32_t>(args.get_int("k", 8));
  spec.s = args.get_int("s", 0);
  spec.seed = seed;
  return proto::make_protocol_by_name(spec);
}

sim::Engine parse_engine(const std::string& label) {
  if (label == "auto") return sim::Engine::kAuto;
  if (label == "interpret") return sim::Engine::kInterpret;
  if (label == "batch") return sim::Engine::kBatch;
  throw std::invalid_argument("unknown engine: " + label);
}

proto::McProtocolPtr build_mc_protocol(const util::Args& args, std::uint32_t channels,
                                       std::uint64_t seed) {
  const auto n = static_cast<std::uint32_t>(args.get_int("n", 1024));
  const auto k = static_cast<std::uint32_t>(args.get_int("k", 8));
  const std::string strategy = args.get("mc", "adapter");
  if (strategy == "adapter") {
    return proto::make_single_channel_adapter(build_protocol(args, seed), channels);
  }
  if (strategy == "striped_rr") return proto::make_striped_round_robin(n, channels);
  if (strategy == "group_wag") {
    return proto::make_group_wait_and_go(n, k, channels, comb::FamilyKind::kRandomized, seed);
  }
  if (strategy == "random_rpd") return proto::make_random_channel_rpd(n, channels, seed);
  throw std::invalid_argument("unknown mc strategy: " + strategy);
}

/// `run --arrival=...` / `run --arrival-file=...`: sustained-load traffic on
/// per-station packet queues instead of a one-shot wake pattern.
int cmd_run_dynamic(const util::Args& args) {
  const auto n = static_cast<std::uint32_t>(args.get_int("n", 1024));
  const auto k = static_cast<std::uint32_t>(args.get_int("k", 8));
  const auto trials = static_cast<std::uint64_t>(args.get_int("trials", 1));
  const auto base_seed = static_cast<std::uint64_t>(args.get_int("seed", 1));
  if (args.get_int("channels", 1) != 1 || args.has("mc")) {
    throw std::invalid_argument("dynamic traffic is single-channel — drop --channels/--mc");
  }
  if (args.has("trace") || args.get_flag("cd")) {
    throw std::invalid_argument("--trace and --cd are one-shot features; drop --arrival");
  }
  if (args.has("pattern") || args.has("pattern-file") || args.has("save-pattern")) {
    throw std::invalid_argument(
        "--arrival replaces the wake pattern — drop --pattern/--pattern-file/--save-pattern");
  }
  if (args.has("per-trial-csv")) {
    throw std::invalid_argument("--per-trial-csv has no row schema for dynamic trials yet");
  }

  const std::unique_ptr<util::ThreadPool> own_pool = make_own_pool(args);
  const std::string metrics_path = metrics_flag(args);

  sim::RunSpec spec;
  spec.trials = trials;
  spec.base_seed = base_seed;
  spec.sim.engine = parse_engine(args.get("engine", "auto"));
  spec.sim.energy = parse_energy_flag(args);
  spec.impairment = parse_impairment_flags(args);
  spec.make_protocol = [&args](std::uint64_t seed) { return build_protocol(args, seed); };

  const std::int64_t horizon_flag = args.get_int("horizon", 0);
  if (horizon_flag < 0) throw std::invalid_argument("--horizon must be >= 1");
  mac::DynamicScenario replay;
  mac::ArrivalSpec arrival;
  if (args.has("arrival-file")) {
    replay = mac::load_arrivals_csv(args.get("arrival-file"), n, horizon_flag);
    arrival.kind = mac::ArrivalKind::kReplay;
    spec.scenario = &replay;
    spec.horizon = replay.horizon();
  } else {
    arrival = mac::ArrivalSpec::parse(args.get("arrival"));
    spec.horizon = horizon_flag > 0 ? horizon_flag : 2048;
    spec.dynamic_n = n;
    spec.dynamic_k = k;
  }

  const auto out = sim::Run(spec, own_pool.get());
  const sim::CellResult& cell = out.cell;

  std::cout << "protocol: " << build_protocol(args, base_seed)->name() << "\n"
            << "n=" << n << " k=" << k << " arrival=" << arrival.name()
            << " horizon=" << spec.horizon << " trials=" << trials << "\n";
  if (!spec.impairment.clean()) {
    std::cout << "impairment: " << spec.impairment.name() << "\n";
  }
  std::cout
            << "packets: " << cell.packet_arrivals << " arrived, " << cell.delivered
            << " delivered, " << cell.backlog << " backlogged at the horizon\n"
            << "throughput mean=" << cell.throughput.mean << " packets/slot"
            << "  jain=" << cell.jain.mean << "\n"
            << "latency p50=" << cell.latency.median << " p95=" << cell.latency.p95
            << " p99=" << cell.latency.p99 << " max=" << cell.latency.max << "\n"
            << "collisions mean=" << cell.collisions.mean
            << " silences mean=" << cell.silences.mean << "\n";
  if (spec.sim.energy != sim::EnergyModel::kOff) {
    std::cout << "energy (" << sim::energy_model_name(spec.sim.energy)
              << "): station mean=" << cell.energy_mean.mean
              << " max=" << cell.energy_max.mean << " slots\n";
  }
  if (!metrics_path.empty()) {
    obs::write_metrics_json(metrics_path);
    std::cout << "[metrics] " << metrics_path << "\n";
  }
  if (trials == 1) {
    // Per-station delivery spread of the single trial (truncated).
    const auto& d = out.dynamic;
    std::cout << "per-station delivered:";
    const std::size_t shown = std::min<std::size_t>(d.stations.size(), 16);
    for (std::size_t i = 0; i < shown; ++i) {
      std::cout << ' ' << d.stations[i] << ':' << d.delivered_per_station[i];
    }
    if (shown < d.stations.size()) std::cout << " ... (" << d.stations.size() << " stations)";
    std::cout << "\n";
  }
  return 0;
}

int cmd_run(const util::Args& args) {
  if (args.has("arrival") || args.has("arrival-file")) return cmd_run_dynamic(args);
  const auto n = static_cast<std::uint32_t>(args.get_int("n", 1024));
  const auto k = static_cast<std::uint32_t>(args.get_int("k", 8));
  const auto trials = static_cast<std::uint64_t>(args.get_int("trials", 1));
  const auto base_seed = static_cast<std::uint64_t>(args.get_int("seed", 1));
  const auto channels = static_cast<std::uint32_t>(args.get_int("channels", 1));
  const bool multichannel = channels > 1 || args.has("mc");
  if (multichannel && (args.has("trace") || args.get_flag("cd"))) {
    throw std::invalid_argument(
        "--trace and --cd are single-channel features; drop --channels/--mc to use them");
  }
  const std::string metrics_path = metrics_flag(args);
  const std::string trace_path = trace_path_flag(args);
  const bool trace_print = args.get_flag("trace");
  if (!trace_path.empty()) {
    obs::set_trace_enabled(true);
    obs::trace_set_process(0, "wakeup_cli run");
  }

  std::unique_ptr<sim::TrialCsvSink> csv;
  if (args.has("per-trial-csv")) {
    csv = std::make_unique<sim::TrialCsvSink>(args.get("per-trial-csv"));
  }
  // --threads=N builds a dedicated pool (0 = inline); otherwise sim::Run
  // parallelizes multi-trial sweeps on the process-wide shared pool.
  const std::unique_ptr<util::ThreadPool> own_pool = make_own_pool(args);

  // One sim::Run call covers the whole sweep: pattern per trial from the
  // facade's seed contract, protocol hoisted per cell (randomized
  // protocols rebuilt per trial), trials fanned out over the pool.
  sim::RunSpec spec;
  spec.trials = trials;
  spec.base_seed = base_seed;
  spec.trial_csv = csv.get();
  spec.impairment = parse_impairment_flags(args);
  spec.sim.max_slots = args.get_int("max-slots", 0);
  spec.sim.engine = parse_engine(args.get("engine", "auto"));
  spec.sim.energy = parse_energy_flag(args);
  spec.sim.record_trace = trace_print || !trace_path.empty();
  spec.sim.record_transmitters = spec.sim.record_trace;
  spec.sim.feedback = args.get_flag("cd") ? mac::FeedbackModel::kCollisionDetection
                                          : mac::FeedbackModel::kNone;

  mac::WakePattern fixed;
  if (args.has("pattern-file")) {
    fixed = mac::load_pattern_csv(args.get("pattern-file"), n);
    spec.pattern = &fixed;
  } else if (args.has("save-pattern")) {
    // Reproducibility beats per-trial variety here: generate one pattern,
    // save it, replay it for every trial.
    const auto kind = parse_kind(args.get("pattern", "staggered"));
    util::Rng rng(util::hash_words({base_seed, 0x434c49ULL /* "CLI" */}));
    fixed = mac::patterns::generate(kind, n, k, args.get_int("s", 0), rng);
    mac::save_pattern_csv(args.get("save-pattern"), fixed);
    spec.pattern = &fixed;
  } else {
    const auto kind = parse_kind(args.get("pattern", "staggered"));
    const mac::Slot s = args.get_int("s", 0);
    spec.make_pattern = [kind, n, k, s](util::Rng& rng) {
      return mac::patterns::generate(kind, n, k, s, rng);
    };
  }

  std::string name;
  util::Sample rounds;
  std::mutex sample_mutex;
  if (multichannel) {
    const std::uint32_t c = channels < 1 ? 1 : channels;
    spec.make_mc_protocol = [&args, c](std::uint64_t seed) {
      return build_mc_protocol(args, c, seed);
    };
    name = build_mc_protocol(args, c, base_seed)->name();
    spec.per_trial_mc = [&](std::uint64_t, const sim::McSimResult& r) {
      const std::lock_guard<std::mutex> lock(sample_mutex);
      if (r.success) rounds.push(static_cast<double>(r.rounds));
    };
  } else {
    spec.make_protocol = [&args](std::uint64_t seed) { return build_protocol(args, seed); };
    name = build_protocol(args, base_seed)->name();
    spec.per_trial = [&](std::uint64_t, const sim::SimResult& r) {
      const std::lock_guard<std::mutex> lock(sample_mutex);
      if (r.success) rounds.push(static_cast<double>(r.rounds));
    };
  }

  const auto out = sim::Run(spec, own_pool.get());

  if (trials == 1) {
    sim::SimResult result;
    if (multichannel) {
      result.success = out.mc.success;
      result.s = out.mc.s;
      result.success_slot = out.mc.success_slot;
      result.rounds = out.mc.rounds;
      result.winner = out.mc.winner;
      result.silences = out.mc.silences;
      result.collisions = out.mc.collisions;
      result.successes = out.mc.successes;
      if (out.mc.success) {
        std::cout << "winning channel: " << out.mc.success_channel << " of " << channels
                  << "\n";
      }
    } else {
      result = out.sim;
    }
    // Report the simulated pattern's k, which --pattern-file may decouple
    // from the --k flag.
    const std::size_t pattern_k = spec.pattern != nullptr ? fixed.k() : k;
    std::cout << "protocol: " << name << "\nn=" << n << " k=" << pattern_k
              << " s=" << result.s << "\n";
    if (!spec.impairment.clean()) {
      std::cout << "impairment: " << spec.impairment.name() << "\n";
    }
    if (result.success) {
      std::cout << "wake-up at slot " << result.success_slot << " (rounds " << result.rounds
                << ") by station " << result.winner << "\n"
                << "collisions=" << result.collisions << " silences=" << result.silences
                << "\n";
    } else {
      std::cout << "FAILED: no wake-up within the slot budget\n";
    }
    if (trace_print && !multichannel && out.sim.trace) out.sim.trace->print(std::cout, 48);
  }
  if (csv) std::cout << "[per-trial csv] " << csv->path() << " (" << csv->rows() << " rows)\n";
  if (spec.sim.energy != sim::EnergyModel::kOff) {
    std::cout << "energy (" << sim::energy_model_name(spec.sim.energy)
              << "): station mean=" << out.cell.energy_mean.mean
              << " max=" << out.cell.energy_max.mean << " slots\n";
  }
  if (!trace_path.empty()) {
    // Single-trial runs carry the slot-by-slot ExecutionTrace; render it as
    // instant events.  Multi-trial runs still get the (empty) valid file.
    if (out.sim.trace) obs::trace_execution(*out.sim.trace, obs::trace_now_us());
    obs::write_trace_json(trace_path);
    std::cout << "[trace] " << trace_path << "\n";
  }
  if (!metrics_path.empty()) {
    obs::write_metrics_json(metrics_path);
    std::cout << "[metrics] " << metrics_path << "\n";
  }

  if (trials > 1) {
    const auto summary = util::Summary::of(rounds);
    const auto ci = util::BootstrapCI::of_mean(rounds, 0.95, 2000, base_seed);
    std::cout << "trials=" << trials << " success=" << rounds.size() << "\n"
              << "rounds mean=" << summary.mean << " [" << ci.lo << ", " << ci.hi
              << "]95%  median=" << summary.median << " p95=" << summary.p95
              << " max=" << summary.max << "\n";
  }
  return out.cell.failures == 0 ? 0 : 1;
}

int cmd_adversary(const util::Args& args) {
  const auto n = static_cast<std::uint32_t>(args.get_int("n", 128));
  const auto k = static_cast<std::uint32_t>(args.get_int("k", 16));
  const auto protocol = build_protocol(args, static_cast<std::uint64_t>(args.get_int("seed", 1)));
  const auto result = sim::run_swap_adversary(*protocol, n, k);
  std::cout << "protocol: " << protocol->name() << "  n=" << n << " k=" << k << "\n"
            << "Theorem 2.1 bound min{k, n-k+1} = " << result.bound << "\n"
            << "rounds forced = " << result.rounds_forced << "  swaps = " << result.swaps
            << (result.protocol_stalled ? "  (protocol stalled at horizon)" : "") << "\n";
  return 0;
}

int cmd_certify(const util::Args& args) {
  comb::WakingSearchConfig config;
  config.n = static_cast<std::uint32_t>(args.get_int("n", 16));
  config.c = static_cast<unsigned>(args.get_int("c", 2));
  config.k_exhaustive = static_cast<std::uint32_t>(args.get_int("k-exhaustive", 2));
  config.k_random = static_cast<std::uint32_t>(args.get_int("k-random", 8));
  const auto result =
      comb::find_certified_seed(config, static_cast<std::uint64_t>(args.get_int("seed", 1)));
  if (!result.found) {
    std::cout << "no certified seed in " << result.attempts << " attempts\n";
    return 1;
  }
  std::cout << "certified waking-matrix seed for n=" << config.n << " c=" << config.c << ": "
            << result.seed << "\n"
            << "attempts=" << result.attempts << " patterns_checked=" << result.patterns_checked
            << " worst_rounds=" << result.worst_rounds << "\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const util::Args args(argc, argv);
    if (args.positional().empty()) {
      print_usage();
      return 2;
    }
    const std::string& command = args.positional().front();
    if (command == "list") return cmd_list();
    if (command == "run") return cmd_run(args);
    if (command == "sweep") return cmd_sweep(args);
    if (command == "adversary") return cmd_adversary(args);
    if (command == "certify") return cmd_certify(args);
    std::cerr << "unknown command: " << command << "\n";
    print_usage();
    return 2;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 2;
  }
}
